// Package rtree implements an STR-packed R-tree over uncertainty disks and
// the branch-and-prune NN≠0 query of [CKP04] ("Querying imprecise data in
// moving object environments"), the baseline the paper compares its query
// structures against. Nodes carry the minimum and maximum disk radius of
// their subtree so both query stages (computing Δ(q), then reporting all
// disks with δ_i(q) < Δ(q)) prune on distance bounds.
package rtree

import (
	"math"
	"sort"

	"pnn/internal/geom"
)

// Tree is a static STR-packed R-tree over disks.
type Tree struct {
	disks []geom.Disk
	nodes []node
	root  int
}

type node struct {
	mbr        geom.BBox
	minR, maxR float64
	children   []int // node indices; nil for leaves
	entries    []int // disk indices; nil for internal nodes
}

const fanout = 16

// Build packs the disks into a tree with Sort-Tile-Recursive loading.
func Build(disks []geom.Disk) *Tree {
	t := &Tree{disks: disks}
	if len(disks) == 0 {
		t.root = -1
		return t
	}
	idx := make([]int, len(disks))
	for i := range idx {
		idx[i] = i
	}
	// STR: sort by x, slice into vertical strips, sort each by y.
	sort.Slice(idx, func(a, b int) bool { return disks[idx[a]].C.X < disks[idx[b]].C.X })
	nLeaves := (len(idx) + fanout - 1) / fanout
	strips := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	perStrip := strips * fanout

	var leaves []int
	for s := 0; s*perStrip < len(idx); s++ {
		lo := s * perStrip
		hi := lo + perStrip
		if hi > len(idx) {
			hi = len(idx)
		}
		strip := idx[lo:hi]
		sort.Slice(strip, func(a, b int) bool { return disks[strip[a]].C.Y < disks[strip[b]].C.Y })
		for l := 0; l < len(strip); l += fanout {
			r := l + fanout
			if r > len(strip) {
				r = len(strip)
			}
			leaves = append(leaves, t.addLeaf(strip[l:r]))
		}
	}
	// Pack upward.
	level := leaves
	for len(level) > 1 {
		var next []int
		for l := 0; l < len(level); l += fanout {
			r := l + fanout
			if r > len(level) {
				r = len(level)
			}
			next = append(next, t.addInternal(level[l:r]))
		}
		level = next
	}
	t.root = level[0]
	return t
}

func (t *Tree) addLeaf(entries []int) int {
	n := node{mbr: geom.EmptyBBox(), minR: math.Inf(1)}
	n.entries = append([]int(nil), entries...)
	for _, e := range entries {
		d := t.disks[e]
		n.mbr = n.mbr.Union(d.BBox())
		n.minR = math.Min(n.minR, d.R)
		n.maxR = math.Max(n.maxR, d.R)
	}
	t.nodes = append(t.nodes, n)
	return len(t.nodes) - 1
}

func (t *Tree) addInternal(children []int) int {
	n := node{mbr: geom.EmptyBBox(), minR: math.Inf(1)}
	n.children = append([]int(nil), children...)
	for _, c := range children {
		n.mbr = n.mbr.Union(t.nodes[c].mbr)
		n.minR = math.Min(n.minR, t.nodes[c].minR)
		n.maxR = math.Max(n.maxR, t.nodes[c].maxR)
	}
	t.nodes = append(t.nodes, n)
	return len(t.nodes) - 1
}

// Len returns the number of indexed disks.
func (t *Tree) Len() int { return len(t.disks) }

// Delta returns Δ(q) = min_i (d(q, c_i) + r_i) by branch and bound. The
// MBR stores whole disks, so d(q, c_i) ≥ dist(q, mbr) − maxR is the center
// bound used for pruning.
func (t *Tree) Delta(q geom.Point) float64 {
	if t.root < 0 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	t.delta(t.root, q, &best)
	return best
}

func (t *Tree) delta(ni int, q geom.Point, best *float64) {
	n := &t.nodes[ni]
	// Lower bound on d(q, c_i) + r_i over the subtree: centers lie inside
	// the MBR, so d(q, c_i) ≥ dist(q, mbr).
	lb := n.mbr.DistToPoint(q) + n.minR
	if lb >= *best {
		return
	}
	if n.entries != nil {
		for _, e := range n.entries {
			if v := t.disks[e].MaxDist(q); v < *best {
				*best = v
			}
		}
		return
	}
	// Order children by optimistic bound for tighter pruning.
	type cb struct {
		c  int
		lb float64
	}
	cbs := make([]cb, len(n.children))
	for i, c := range n.children {
		ch := &t.nodes[c]
		cbs[i] = cb{c, ch.mbr.DistToPoint(q) + ch.minR}
	}
	sort.Slice(cbs, func(a, b int) bool { return cbs[a].lb < cbs[b].lb })
	for _, x := range cbs {
		t.delta(x.c, q, best)
	}
}

// NonzeroQuery implements the [CKP04] branch-and-prune: compute Δ(q), then
// report all disks whose minimum distance is below it. Results are sorted.
func (t *Tree) NonzeroQuery(q geom.Point) []int {
	if t.root < 0 {
		return nil
	}
	if len(t.disks) == 1 {
		return []int{0}
	}
	delta := t.Delta(q)
	var out []int
	t.report(t.root, q, delta, &out)
	// Degenerate-safe pass for the arg-min disk (see core.NonzeroSet):
	// only needed for zero-radius regions where δ = Δ.
	arg := -1
	for i, d := range t.disks {
		if d.MaxDist(q) == delta {
			arg = i
			break
		}
	}
	if arg >= 0 && t.disks[arg].MinDist(q) >= delta {
		second := math.Inf(1)
		for j, d := range t.disks {
			if j != arg {
				second = math.Min(second, d.MaxDist(q))
			}
		}
		if t.disks[arg].MinDist(q) < second {
			out = append(out, arg)
		}
	}
	sort.Ints(out)
	return out
}

func (t *Tree) report(ni int, q geom.Point, bound float64, out *[]int) {
	n := &t.nodes[ni]
	// δ_i ≥ d(q, c_i) − r_i ≥ dist(q, mbr) − maxR over the subtree.
	if n.mbr.DistToPoint(q)-n.maxR >= bound {
		return
	}
	if n.entries != nil {
		for _, e := range n.entries {
			if t.disks[e].MinDist(q) < bound {
				*out = append(*out, e)
			}
		}
		return
	}
	for _, c := range n.children {
		t.report(c, q, bound, out)
	}
}
