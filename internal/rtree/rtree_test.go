package rtree

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/core"
	"pnn/internal/geom"
)

func randomDisks(r *rand.Rand, n int) []geom.Disk {
	ds := make([]geom.Disk, n)
	for i := range ds {
		ds[i] = geom.Disk{
			C: geom.Pt(r.Float64()*100, r.Float64()*100),
			R: 0.2 + r.Float64()*4,
		}
	}
	return ds
}

func TestEmptyAndSingle(t *testing.T) {
	if got := Build(nil).NonzeroQuery(geom.Pt(0, 0)); got != nil {
		t.Fatalf("empty tree: %v", got)
	}
	tr := Build([]geom.Disk{geom.Dsk(5, 5, 1)})
	if got := tr.NonzeroQuery(geom.Pt(0, 0)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single: %v", got)
	}
}

func TestDeltaAgainstBrute(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		disks := randomDisks(r, 1+r.Intn(500))
		tr := Build(disks)
		for probe := 0; probe < 30; probe++ {
			q := geom.Pt(r.Float64()*120-10, r.Float64()*120-10)
			want := math.Inf(1)
			for _, d := range disks {
				want = math.Min(want, d.MaxDist(q))
			}
			if got := tr.Delta(q); math.Abs(got-want) > 1e-9 {
				t.Fatalf("Δ: got %v want %v", got, want)
			}
		}
	}
}

func TestNonzeroQueryAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		disks := randomDisks(r, 2+r.Intn(200))
		tr := Build(disks)
		for probe := 0; probe < 50; probe++ {
			q := geom.Pt(r.Float64()*120-10, r.Float64()*120-10)
			got := tr.NonzeroQuery(q)
			want := core.NonzeroSet(disks, q)
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: got %v want %v", trial, got, want)
				}
			}
		}
	}
}

func BenchmarkNonzeroQuery10k(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	disks := make([]geom.Disk, 10000)
	for i := range disks {
		disks[i] = geom.Disk{C: geom.Pt(r.Float64()*1000, r.Float64()*1000), R: r.Float64()}
	}
	tr := Build(disks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NonzeroQuery(geom.Pt(r.Float64()*1000, r.Float64()*1000))
	}
}
