package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// NonDeterminism guards the packages whose answers are proven bitwise
// equal across execution strategies — the quantifiers
// (internal/quantify), the NN≠0 structures (internal/nnq,
// internal/linf), the Bentley–Saxe tracker (internal/logmethod), and
// the DynamicIndex layer (dynamic.go in the root package). Those
// proofs (sparse==dense, dynamic==static-rebuild) only hold if the
// code is a pure function of its inputs and seeds: time.Now and the
// process-global math/rand source (rand.Intn, rand.Float64, …) are
// banned there. Explicitly seeded sources (rand.New(rand.NewSource(s)))
// remain fine.
var NonDeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "no time.Now or global math/rand source in the deterministic query packages",
	Run:  runNonDeterminism,
}

// deterministicPackages are the module-relative packages under the
// determinism contract.
var deterministicPackages = map[string]bool{
	"internal/quantify":  true,
	"internal/nnq":       true,
	"internal/linf":      true,
	"internal/logmethod": true,
}

// globalRandFuncs are the math/rand package functions backed by the
// shared global source. Constructors (New, NewSource, NewZipf) and
// methods on an explicit *rand.Rand are allowed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runNonDeterminism(pass *Pass) {
	rel := pass.Pkg.RelPath
	rootPkg := rel == ""
	if !rootPkg && !deterministicPackages[rel] {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if rootPkg {
			// In the root package only the DynamicIndex layer carries the
			// determinism contract.
			name := filepath.Base(pass.Prog.Fset.Position(f.Package).Filename)
			if name != "dynamic.go" {
				continue
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (on *rand.Rand, time.Time, …) have receivers; only
			// package-level functions reach the global state.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(), "time.Now in a deterministic package; results must be a pure function of inputs and seeds")
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "rand.%s uses the process-global source; take a seeded *rand.Rand instead", fn.Name())
				}
			}
			return true
		})
	}
}
