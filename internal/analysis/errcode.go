package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// ErrCode enforces the wire error-code contract in the handler
// packages (server, server/shard): every error code written to a
// response must be one of the declared api constants — never a string
// literal — and every (code, status) pairing must be declared in
// api.CodeStatuses, the single source of truth for which HTTP status a
// code may ride on. This kills the code/status drift between tiers
// that stable wire codes exist to prevent.
//
// The check covers every call argument whose parameter is named "code"
// (writeError, fillError, and any future helper alike) and every
// composite literal with a string "code"/"Code" field (queryError,
// api.Error). A non-constant code or status is accepted only as a
// plain identifier or field selector — a pass-through of a value whose
// construction site is itself checked.
var ErrCode = &Analyzer{
	Name: "errcode",
	Doc:  "handler error codes must be api constants paired with their declared HTTP status",
	Run:  runErrCode,
}

func runErrCode(pass *Pass) {
	rel := pass.Pkg.RelPath
	if rel != "server" && rel != "server/shard" {
		return
	}
	apiPkg := pass.Prog.Rel("api")
	if apiPkg == nil {
		pass.Reportf(pass.Pkg.Files[0].Package, "cannot enforce code/status pairs: module has no api package")
		return
	}
	allowed, ok := codeStatuses(apiPkg)
	if !ok {
		pass.Reportf(pass.Pkg.Files[0].Package, "cannot enforce code/status pairs: api.CodeStatuses map not found")
		return
	}
	info := pass.Pkg.Info

	checkPair := func(codeExpr, statusExpr ast.Expr) {
		code, codeConst := stringConst(info, codeExpr)
		if codeConst {
			obj := objectOf(info, codeExpr)
			c, isConst := obj.(*types.Const)
			if !isConst || c.Pkg() == nil || c.Pkg().Path() != apiPkg.Path {
				pass.Reportf(codeExpr.Pos(),
					"error code %q must be a declared api constant, not a literal or foreign constant", code)
				return
			}
			statuses, declared := allowed[code]
			if !declared {
				pass.Reportf(codeExpr.Pos(),
					"error code %q has no entry in api.CodeStatuses", code)
				return
			}
			if statusExpr != nil {
				if status, statusConst := intConst(info, statusExpr); statusConst {
					if !statuses[status] {
						pass.Reportf(statusExpr.Pos(),
							"error code %q paired with HTTP status %d; api.CodeStatuses declares %s",
							code, status, statusList(statuses))
					}
				} else if !isPassThrough(statusExpr) {
					pass.Reportf(statusExpr.Pos(),
						"HTTP status for code %q must be a constant or a pass-through identifier", code)
				}
			}
			return
		}
		if !isPassThrough(codeExpr) {
			pass.Reportf(codeExpr.Pos(),
				"error code must be an api constant or a pass-through identifier, not a computed value")
		}
	}

	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			codeExpr, statusExpr := codeStatusArgs(info, n)
			if codeExpr != nil {
				checkPair(codeExpr, statusExpr)
			}
		case *ast.CompositeLit:
			codeExpr, statusExpr := codeStatusFields(info, n)
			if codeExpr != nil {
				checkPair(codeExpr, statusExpr)
			}
		}
		return true
	})
}

// codeStatuses constant-folds the api package's
//
//	var CodeStatuses = map[string][]int{CodeX: {400, 405}, ...}
//
// declaration into code → allowed-status-set.
func codeStatuses(apiPkg *Package) (map[string]map[int]bool, bool) {
	for _, f := range apiPkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "CodeStatuses" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						return nil, false
					}
					return foldCodeStatuses(apiPkg.Info, lit)
				}
			}
		}
	}
	return nil, false
}

func foldCodeStatuses(info *types.Info, lit *ast.CompositeLit) (map[string]map[int]bool, bool) {
	out := make(map[string]map[int]bool)
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return nil, false
		}
		code, ok := stringConst(info, kv.Key)
		if !ok {
			return nil, false
		}
		val, ok := kv.Value.(*ast.CompositeLit)
		if !ok {
			return nil, false
		}
		set := make(map[int]bool)
		for _, s := range val.Elts {
			status, ok := intConst(info, s)
			if !ok {
				return nil, false
			}
			set[status] = true
		}
		out[code] = set
	}
	return out, true
}

// codeStatusArgs finds, in one call, the argument bound to a string
// parameter named "code" and (if present) the one bound to an int
// parameter named "status".
func codeStatusArgs(info *types.Info, call *ast.CallExpr) (codeExpr, statusExpr ast.Expr) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil, nil
	}
	sig, ok := types.Unalias(tv.Type).(*types.Signature)
	if !ok {
		return nil, nil
	}
	params := sig.Params()
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		p := params.At(i)
		switch {
		case p.Name() == "code" && types.Identical(p.Type().Underlying(), types.Typ[types.String].Underlying()):
			codeExpr = call.Args[i]
		case p.Name() == "status" && types.Identical(p.Type().Underlying(), types.Typ[types.Int]):
			statusExpr = call.Args[i]
		}
	}
	return codeExpr, statusExpr
}

// codeStatusFields finds, in a struct composite literal, the value of
// a string field named "code"/"Code" and of an int field named
// "status"/"Status" (positional and keyed literals alike).
func codeStatusFields(info *types.Info, lit *ast.CompositeLit) (codeExpr, statusExpr ast.Expr) {
	tv, ok := info.Types[lit]
	if !ok {
		return nil, nil
	}
	st, ok := types.Unalias(tv.Type).Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	fieldVal := func(want string) ast.Expr {
		for i, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok && strings.EqualFold(id.Name, want) {
					return kv.Value
				}
				continue
			}
			if i < st.NumFields() && strings.EqualFold(st.Field(i).Name(), want) {
				return elt
			}
		}
		return nil
	}
	isString := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	if ce := fieldVal("code"); ce != nil && isString(ce) {
		codeExpr = ce
		statusExpr = fieldVal("status")
	}
	return codeExpr, statusExpr
}

// isPassThrough reports whether e is a plain identifier or field
// selector — a value forwarded from a construction site that the
// analyzer checks on its own.
func isPassThrough(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPassThrough(e.X)
	}
	return false
}

func stringConst(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func intConst(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return 0, false
	}
	return int(v), true
}

func statusList(set map[int]bool) string {
	var list []int
	for s := range set {
		list = append(list, s)
	}
	sort.Ints(list)
	parts := make([]string, len(list))
	for i, s := range list {
		parts[i] = fmt.Sprint(s)
	}
	return strings.Join(parts, ", ")
}
