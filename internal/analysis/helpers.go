package analysis

import (
	"go/ast"
	"go/types"
)

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is (or trivially implements) error.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.AssignableTo(t, errorType)
}

// objectOf resolves the object an expression refers to: a bare
// identifier or the selected name of a selector. Returns nil for
// anything else.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// namedFrom unwraps t (through pointers and aliases) to a named type,
// or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t unwraps to the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeFunc resolves the called function or method of call, or nil
// (builtins, calls of function-typed values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	obj := objectOf(info, call.Fun)
	fn, _ := obj.(*types.Func)
	return fn
}

// isSliceOrMap reports whether t is a slice or map type.
func isSliceOrMap(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// containsLock reports whether a value of type t embeds a sync.Mutex
// or sync.RWMutex by value (directly, through struct fields, or
// through arrays). Pointers never count: sharing a lock via pointer is
// the correct idiom.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex") {
		// isNamed sees through pointers; reject those here.
		if _, ptr := types.Unalias(t).(*types.Pointer); ptr {
			return false
		}
		return true
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// recvIdent returns the receiver identifier of a method declaration,
// or nil (unnamed or "_" receivers).
func recvIdent(decl *ast.FuncDecl) *ast.Ident {
	if decl.Recv == nil || len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
		return nil
	}
	id := decl.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}
