module example.test/errcode

go 1.24
