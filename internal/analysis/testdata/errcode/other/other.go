// Package other sits outside the errcode analyzer's remit (it is
// neither server nor server/shard): a naked code literal here must not
// be flagged.
package other

func report(status int, code string, err error) {
	_, _, _ = status, code, err
}

func use(err error) {
	report(500, "totally_made_up", err)
}
