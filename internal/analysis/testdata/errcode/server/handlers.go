// Package server seeds errcode violations: the analyzer patrols the
// "server" and "server/shard" packages of any module it loads, this
// mini-module's included.
package server

import (
	"example.test/errcode/api"
)

type responseWriter interface{ WriteHeader(int) }

type srv struct{}

// writeError mirrors the real handler helper: the analyzer binds the
// arguments by parameter name (status int, code string).
func (s srv) writeError(w responseWriter, status int, code string, err error) {
	w.WriteHeader(status)
	_ = err
}

// queryError mirrors the real struct shape the composite-literal check
// covers: a code field next to a status field.
type queryError struct {
	status int
	code   string
	err    error
}

const homegrown = "homegrown"

func (s srv) handle(w responseWriter, err error, dynamic string) {
	// Declared pairs pass.
	s.writeError(w, 400, api.CodeBadParam, err)
	s.writeError(w, 405, api.CodeBadParam, err)
	s.writeError(w, 404, api.CodeUnknownDataset, err)

	s.writeError(w, 418, api.CodeInternal, err) // want "paired with HTTP status 418; api.CodeStatuses declares 500"

	s.writeError(w, 400, "bad_param", err) // want "must be a declared api constant, not a literal or foreign constant"

	s.writeError(w, 400, homegrown, err) // want "must be a declared api constant, not a literal or foreign constant"

	s.writeError(w, 400, api.CodeOrphan, err) // want "has no entry in api.CodeStatuses"

	s.writeError(w, 500, dynamic+"x", err) // want "not a computed value"

	// Pass-through of an already-checked construction site is fine.
	qe := queryError{status: 404, code: api.CodeUnknownDataset, err: err}
	s.writeError(w, qe.status, qe.code, qe.err)
}

func (s srv) build(err error) []queryError {
	return []queryError{
		{status: 500, code: api.CodeInternal, err: err},
		{404, api.CodeUnknownDataset, err},
		{status: 500, code: api.CodeUnknownDataset, err: err}, // want "paired with HTTP status 500; api.CodeStatuses declares 404"
		{418, api.CodeInternal, err},                          // want "paired with HTTP status 418; api.CodeStatuses declares 500"
		{status: 400, code: "oops", err: err},                 // want "must be a declared api constant, not a literal or foreign constant"
	}
}
