// Package api is the testdata twin of the real wire-contract package:
// a handful of code constants plus the CodeStatuses declaration the
// errcode analyzer constant-folds.
package api

const (
	CodeBadParam       = "bad_param"
	CodeUnknownDataset = "unknown_dataset"
	CodeInternal       = "internal"
	// CodeOrphan is deliberately absent from CodeStatuses: pairing it
	// with any status must be flagged.
	CodeOrphan = "orphan"
)

// CodeStatuses declares the allowed HTTP statuses per code.
var CodeStatuses = map[string][]int{
	CodeBadParam:       {400, 405},
	CodeUnknownDataset: {404},
	CodeInternal:       {500},
}
