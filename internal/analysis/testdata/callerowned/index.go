// Package callerowned is the mini-module's root package — in scope for
// the caller-owned-results rule, like the real module's pnn facade.
package callerowned

type inner struct {
	buf []float64
}

// Index mimics a query structure: exported accessors must hand back
// copies, never views of receiver state.
type Index struct {
	ids  []int
	tags map[string]int
	sub  inner
}

func (x *Index) IDs() []int {
	return x.ids // want "IDs returns x.ids, aliasing receiver state"
}

func (x *Index) Head(n int) []int {
	return x.ids[:n] // want "Head returns x.ids"
}

func (x *Index) Tags() map[string]int {
	return x.tags // want "Tags returns x.tags"
}

func (x *Index) Buf() []float64 {
	return x.sub.buf // want "Buf returns x.sub.buf"
}

// Copy is the blessed shape: a fresh allocation per call.
func (x *Index) Copy() []int {
	out := make([]int, len(x.ids))
	copy(out, x.ids)
	return out
}

// Len returns a value, not a view.
func (x *Index) Len() int {
	return len(x.ids)
}

// raw is unexported: internal helpers may share freely.
func (x *Index) raw() []int {
	return x.ids
}

// View is a documented zero-copy accessor: the directive suppresses
// the finding with a grep-able justification.
//
//pnnvet:ignore callerowned -- zero-copy view by contract; callers iterate and never retain
func (x *Index) View() []int { return x.ids }

// Fresh has no receiver state to alias.
func Fresh(n int) []int {
	return make([]int, n)
}
