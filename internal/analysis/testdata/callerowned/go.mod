module example.test/callerowned

go 1.24
