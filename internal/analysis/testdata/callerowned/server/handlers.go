// Package server is neither the root package nor internal/*: the
// caller-owned-results rule does not apply (handlers share state with
// their own locking), so the aliasing return below must not be flagged.
package server

type cache struct {
	entries []int
}

func (c *cache) Entries() []int {
	return c.entries
}
