// Package sub proves internal/* packages are in scope for the
// caller-owned-results rule.
package sub

type Set struct {
	members []string
}

func (s *Set) Members() []string {
	return s.members // want "Members returns s.members, aliasing receiver state"
}

func (s *Set) Sorted() []string {
	out := make([]string, len(s.members))
	copy(out, s.members)
	return out
}
