// Package ctxflow seeds context-flow violations: functions that accept
// a context must thread it, not mint roots or sleep the request.
package ctxflow

import (
	"context"
	"time"

	"example.test/ctxflow/obs"
)

func handle(ctx context.Context, retry bool) error {
	if retry {
		ctx = context.Background() // want "context.Background inside a context-taking function"
	}
	time.Sleep(time.Millisecond) // want "time.Sleep on a request path"
	return ctx.Err()
}

func lookup(ctx context.Context) context.Context {
	return context.TODO() // want "context.TODO inside a context-taking function"
}

// detached spawns background work: a goroutine owning a fresh context
// and its own pacing is legitimate and must not be flagged.
func detached(ctx context.Context, done chan struct{}) {
	go func() {
		time.Sleep(time.Millisecond)
		bg := context.Background()
		_ = bg
		close(done)
	}()
	<-ctx.Done()
}

// plain takes no context: wall-clock pacing is its own business.
func plain(d time.Duration) {
	time.Sleep(d)
}

// dropped discards StartSpan's derived context two ways: blank
// assignment and a bare expression statement. Both flatten the trace.
func dropped(ctx context.Context) error {
	_, span := obs.StartSpan(ctx, "work") // want "obs.StartSpan's derived context is discarded"
	defer span.End()
	obs.StartSpan(ctx, "aside") // want "obs.StartSpan's derived context is discarded"
	return ctx.Err()
}

// threaded keeps the derived context, as the rule demands; a LeafSpan
// is the sanctioned way to not propagate.
func threaded(ctx context.Context) error {
	ctx, span := obs.StartSpan(ctx, "work")
	defer span.End()
	leaf := obs.LeafSpan(ctx, "leaf")
	leaf.End()
	return ctx.Err()
}
