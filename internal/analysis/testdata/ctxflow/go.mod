module example.test/ctxflow

go 1.24
