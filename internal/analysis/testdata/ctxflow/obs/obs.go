// Package obs is the testdata twin of the real tracing package: just
// enough surface for the ctxflow analyzer's span-threading rule, which
// matches StartSpan by package name.
package obs

import "context"

// Span is a recording span; End finishes it.
type Span struct{}

// End finishes the span.
func (s *Span) End() {}

// StartSpan returns a derived context the caller must thread onward.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// LeafSpan is the sanctioned non-propagating child span.
func LeafSpan(ctx context.Context, name string) *Span {
	return &Span{}
}
