// Package sentinelcmp seeds identity comparisons against sentinel
// errors — the class errors.Is exists to replace.
package sentinelcmp

import (
	"errors"
	"io"
)

// ErrClosed is a package-level sentinel, the shape the analyzer keys
// on.
var ErrClosed = errors.New("sentinelcmp: closed")

func eq(err error) bool {
	return err == ErrClosed // want "ErrClosed compared with ==; use errors.Is"
}

func neq(err error) bool {
	return err != io.EOF // want "EOF compared with !=; use errors.Is"
}

func reversed(err error) bool {
	return ErrClosed == err // want "ErrClosed compared with ==; use errors.Is"
}

func tagSwitch(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrClosed: // want "switch case compares ErrClosed by identity; use errors.Is"
		return "closed"
	case io.ErrUnexpectedEOF: // want "switch case compares ErrUnexpectedEOF by identity; use errors.Is"
		return "torn"
	}
	return "other"
}
