module example.test/sentinelcmp

go 1.24
