package sentinelcmp

import (
	"errors"
	"io"
)

// clean compares the blessed ways: errors.Is for sentinels, == only
// against nil or non-sentinel locals.
func clean(err error) bool {
	if errors.Is(err, ErrClosed) || errors.Is(err, io.EOF) {
		return true
	}
	if err == nil {
		return false
	}
	local := errors.New("scratch")
	return err == local
}
