package sentinelcmp

import "io"

// suppressed carries a well-formed directive on the line above the
// comparison: the violation must NOT be reported.
func suppressed(err error) bool {
	//pnnvet:ignore sentinelcmp -- identity semantics are the point here: the test asserts pointer equality
	return err == ErrClosed
}

// reasonless has a directive without the mandatory "-- reason" tail:
// the directive itself is reported (rule "ignore") and the comparison
// below stays reported — a broken suppression must not suppress.
func reasonless(err error) bool {
	//pnnvet:ignore sentinelcmp
	return err == io.EOF // want "EOF compared with ==; use errors.Is"
}

// unknownRule names a rule that does not exist; same treatment.
func unknownRule(err error) bool {
	//pnnvet:ignore nosuchrule -- the rule name is a typo
	return err != ErrClosed // want "ErrClosed compared with !=; use errors.Is"
}
