// Package other is off the determinism contract: wall-clock reads and
// the global rand source are its own business.
package other

import (
	"math/rand"
	"time"
)

func now() time.Time {
	return time.Now()
}

func roll() int {
	return rand.Intn(6)
}
