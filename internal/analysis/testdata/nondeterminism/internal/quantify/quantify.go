// Package quantify stands in for the real deterministic quantifier
// package (module-relative path internal/quantify is under the
// determinism contract).
package quantify

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic package"
}

func jitter() float64 {
	return rand.Float64() // want "rand.Float64 uses the process-global source"
}

func pick(n int) int {
	return rand.Intn(n) // want "rand.Intn uses the process-global source"
}

// seeded uses an explicit source: a pure function of the seed, allowed.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// elapsed operates on caller-provided times: methods on time.Time are
// fine, only time.Now is banned.
func elapsed(a, b time.Time) time.Duration {
	return b.Sub(a)
}
