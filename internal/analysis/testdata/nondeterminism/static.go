// Package nondeterminism is the mini-module's root package. Only its
// dynamic.go carries the determinism contract; this file may read the
// clock.
package nondeterminism

import "time"

func wallClock() time.Time {
	return time.Now()
}
