module example.test/nondeterminism

go 1.24
