package nondeterminism

import "time"

// tick lives in dynamic.go of the root package — the one root-package
// file under the determinism contract (the DynamicIndex layer).
func tick() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic package"
}
