module example.test/lockdiscipline

go 1.24
