// Package server seeds lock-discipline violations in a package the
// held-across sub-rule patrols (module-relative path "server").
package server

import (
	"net/http"
	"sync"
)

type T struct {
	mu   sync.Mutex
	smu  sync.Mutex
	cond *sync.Cond
	wg   sync.WaitGroup
	ch   chan int
}

func (t *T) sendUnderLock() {
	t.mu.Lock()
	t.ch <- 1 // want "channel send while holding t.mu"
	t.mu.Unlock()
}

func (t *T) waitUnderDeferredUnlock() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wg.Wait() // want "sync.WaitGroup.Wait while holding t.mu"
}

func (t *T) httpUnderLock() {
	t.mu.Lock()
	resp, err := http.Get("http://localhost/healthz") // want "net/http.Get while holding t.mu"
	t.mu.Unlock()
	if err == nil {
		resp.Body.Close()
	}
}

// branchUnlock releases only on the early-return path: the
// fall-through still holds the lock at the send.
func (t *T) branchUnlock(done bool) {
	t.mu.Lock()
	if done {
		t.mu.Unlock()
		return
	}
	t.ch <- 1 // want "channel send while holding t.mu"
	t.mu.Unlock()
}

// cleanWindow closes the lock window before blocking: no findings.
func (t *T) cleanWindow() {
	t.mu.Lock()
	t.mu.Unlock()
	t.ch <- 1
	t.wg.Wait()
}

// condWait is the blessed pattern: sync.Cond.Wait holds its mutex by
// contract and is exempt.
func (t *T) condWait() {
	t.smu.Lock()
	defer t.smu.Unlock()
	t.cond.Wait()
}

// spawned goroutines run in their own dynamic context; the send inside
// the literal does not inherit the parent's held set.
func (t *T) spawn() {
	t.mu.Lock()
	go func() {
		t.ch <- 1
	}()
	t.mu.Unlock()
}
