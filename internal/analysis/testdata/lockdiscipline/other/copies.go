// Package other is outside the held-across packages (server, store,
// server/shard) — blocking under a lock is not flagged here — but the
// no-lock-copies rule applies module-wide.
package other

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(mu sync.Mutex) { // want "parameter passes a lock by value; use a pointer"
	mu.Lock()
	defer mu.Unlock()
}

func byValueRecv(g guarded) int { // want "parameter passes a lock by value; use a pointer"
	return g.n
}

func (g guarded) Count() int { // want "receiver passes a lock by value; use a pointer"
	return g.n
}

func assignCopy(g *guarded) {
	m := g.mu // want "assignment copies a lock; use a pointer"
	_ = &m
}

func rangeCopy(all []guarded) int {
	total := 0
	for _, g := range all { // want "range variable copies a lock; range over pointers"
		total += g.n
	}
	return total
}

// cleanPointers moves locks the right way: behind pointers.
func cleanPointers(g *guarded, all []*guarded) int {
	p := g
	total := p.n
	for _, q := range all {
		total += q.n
	}
	return total
}

// heldAcrossOutOfScope blocks under a lock, but this package is not on
// the serving path: no held-across finding.
func heldAcrossOutOfScope(g *guarded, ch chan int, wg *sync.WaitGroup) {
	g.mu.Lock()
	ch <- 1
	wg.Wait()
	g.mu.Unlock()
}
