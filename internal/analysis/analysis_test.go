package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Each analyzer owns a golden mini-module under testdata/<rule>/ (its
// own go.mod, invisible to the go tool). Seeded violations carry
//
//	// want "message substring"
//
// comments on the line the diagnostic must land on; clean files carry
// none. The test is bidirectional: every want must be matched by a
// diagnostic on that exact file and line, and every diagnostic must be
// claimed by a want — an analyzer that drifts in either direction
// fails loudly.

// want is one expected diagnostic: file, exact line, and a substring
// of the message.
type want struct {
	file string
	line int
	sub  string
	hit  bool
}

func (w *want) String() string {
	return fmt.Sprintf("%s:%d: %q", w.file, w.line, w.sub)
}

var wantSubRE = regexp.MustCompile(`"([^"]*)"`)

// collectWants scans the loaded sources for want comments. Malformed
// ignore directives are themselves expectations: the runner must
// report them under rule "ignore" at the directive's line.
func collectWants(t *testing.T, prog *Program, pkgs []*Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := prog.Fset.Position(c.Pos())
					if strings.HasPrefix(c.Text, ignorePrefix) {
						if directiveMalformed(c.Text) {
							wants = append(wants, &want{file: pos.Filename, line: pos.Line, sub: "malformed directive"})
						}
						continue
					}
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					subs := wantSubRE.FindAllStringSubmatch(rest, -1)
					if len(subs) == 0 {
						t.Fatalf("%s: want comment without a quoted substring: %s", pos, c.Text)
					}
					for _, m := range subs {
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, sub: m[1]})
					}
				}
			}
		}
	}
	return wants
}

// directiveMalformed mirrors the runner's directive grammar: rules,
// " -- ", a non-empty reason, and only known rule names.
func directiveMalformed(text string) bool {
	rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
	rules, reason, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		return true
	}
	known := map[string]bool{"all": true}
	for _, a := range All {
		known[a.Name] = true
	}
	names := 0
	for _, name := range strings.Split(strings.TrimSpace(rules), ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		names++
		if !known[name] {
			return true
		}
	}
	return names == 0
}

// runGolden loads testdata/<a.Name> and checks Run's diagnostics
// against the want comments, both directions.
func runGolden(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", a.Name)
	prog, targets, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags := Run(prog, targets, []*Analyzer{a})
	wants := collectWants(t, prog, targets)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.sub) {
				w.hit, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s", w)
		}
	}
}

func TestErrCode(t *testing.T)        { runGolden(t, ErrCode) }
func TestSentinelCmp(t *testing.T)    { runGolden(t, SentinelCmp) }
func TestLockDiscipline(t *testing.T) { runGolden(t, LockDiscipline) }
func TestCallerOwned(t *testing.T)    { runGolden(t, CallerOwned) }
func TestCtxFlow(t *testing.T)        { runGolden(t, CtxFlow) }
func TestNonDeterminism(t *testing.T) { runGolden(t, NonDeterminism) }

// TestSuppressionIsLineScoped pins the directive's reach: the line it
// sits on and the line directly below, nothing further. The seeded
// violation in sentinelcmp's ignored.go sits one line under its
// directive and must stay suppressed even when the whole suite runs.
func TestSuppressionIsLineScoped(t *testing.T) {
	prog, targets, err := Load(filepath.Join("testdata", "sentinelcmp"), "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, targets, All)
	for _, d := range diags {
		if d.Rule != "sentinelcmp" {
			continue
		}
		if strings.HasSuffix(d.Pos.Filename, "ignored.go") && strings.Contains(d.Message, "ErrClosed compared with ==") {
			t.Errorf("suppressed violation reported anyway: %s", d)
		}
	}
}

// TestRunOrdersDiagnostics pins the file/line ordering contract of Run
// — pnnvet's output must be stable across runs for diffing in CI logs.
func TestRunOrdersDiagnostics(t *testing.T) {
	prog, targets, err := Load(filepath.Join("testdata", "sentinelcmp"), "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, targets, []*Analyzer{SentinelCmp})
	if len(diags) < 2 {
		t.Fatalf("want several diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename || (a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
