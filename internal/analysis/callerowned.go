package analysis

import (
	"go/ast"
	"go/types"
)

// CallerOwned enforces the result-ownership contract of the query
// surface: an exported method of the root package or of an internal
// package must not return a slice or map that aliases receiver state —
// `return x.field`, `return x.field[:n]`, or `return x.a.b`. A caller
// that mutates (or merely holds) such a result races with every later
// query against the same structure; PR 4's aliasing audit proved the
// facade clean dynamically, this is the static twin that keeps it
// that way. Intentional zero-copy views carry an ignore directive with
// their justification.
var CallerOwned = &Analyzer{
	Name: "callerowned",
	Doc:  "exported query methods must not return slices/maps aliasing receiver state",
	Run:  runCallerOwned,
}

func runCallerOwned(pass *Pass) {
	rel := pass.Pkg.RelPath
	if rel != "" && !hasPathPrefix(rel, "internal") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := recvIdent(fd)
			if recv == nil {
				continue
			}
			recvObj := info.Defs[recv]
			if recvObj == nil {
				continue
			}
			results := fieldListTypes(info, fd.Type.Results)
			if len(results) == 0 {
				continue
			}
			checkReturns(pass, fd, recvObj, results)
		}
	}
}

func fieldListTypes(info *types.Info, fl *ast.FieldList) []types.Type {
	if fl == nil {
		return nil
	}
	var out []types.Type
	for _, f := range fl.List {
		t := info.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

func checkReturns(pass *Pass, fd *ast.FuncDecl, recvObj types.Object, results []types.Type) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are not the method's return path
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != len(results) {
			return true
		}
		for i, e := range ret.Results {
			if !isSliceOrMap(results[i]) {
				continue
			}
			if field, ok := aliasesReceiver(info, recvObj, e); ok {
				pass.Reportf(e.Pos(),
					"%s returns %s, aliasing receiver state; return a copy (or justify a zero-copy view with an ignore directive)",
					fd.Name.Name, field)
			}
		}
		return true
	})
}

// aliasesReceiver reports whether e reads a field (or subslice of a
// field) reachable from the receiver: x.f, x.a.b, x.f[1:], (*x).f.
func aliasesReceiver(info *types.Info, recvObj types.Object, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if isReceiverChain(info, recvObj, e.X) {
			return types.ExprString(e), true
		}
	case *ast.SliceExpr:
		// A full or partial subslice shares the backing array.
		return aliasesReceiver(info, recvObj, e.X)
	}
	return "", false
}

// isReceiverChain reports whether e is the receiver itself or a
// selector chain rooted at it (x, *x, x.a, x.a.b …).
func isReceiverChain(info *types.Info, recvObj types.Object, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e] == recvObj
	case *ast.SelectorExpr:
		return isReceiverChain(info, recvObj, e.X)
	case *ast.StarExpr:
		return isReceiverChain(info, recvObj, e.X)
	}
	return false
}

func hasPathPrefix(path, prefix string) bool {
	return path == prefix || (len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/')
}
