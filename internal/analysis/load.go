package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	// Path is the full import path ("pnn/server/shard").
	Path string
	// RelPath is the path relative to the module root: "" for the root
	// package, "server/shard" for pnn/server/shard. Analyzers scope
	// themselves by RelPath so they work identically on the real module
	// and on testdata mini-modules.
	RelPath string
	// Dir is the package directory on disk.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a module's worth of loaded packages sharing one FileSet:
// the analysis targets plus every module-internal dependency (analyzers
// such as errcode read declarations out of dependency packages).
type Program struct {
	ModPath string
	ModDir  string
	Fset    *token.FileSet
	// Pkgs maps import path to package, for targets and module-internal
	// dependencies alike.
	Pkgs map[string]*Package
}

// Rel returns the package with the given module-relative path, or nil.
func (p *Program) Rel(rel string) *Package {
	path := p.ModPath
	if rel != "" {
		path += "/" + rel
	}
	return p.Pkgs[path]
}

// sharedFset is the FileSet behind every Load: the stdlib source
// importer is bound to one FileSet for its lifetime, and sharing it
// across loads lets one process (pnnvet, the self-tests) type-check the
// standard library once instead of once per mini-module.
var (
	sharedFset = token.NewFileSet()
	stdOnce    sync.Once
	stdImp     types.ImporterFrom
)

func stdImporter() types.ImporterFrom {
	stdOnce.Do(func() {
		// The "source" importer type-checks dependencies from source under
		// GOROOT — no compiled export data needed, no external tooling.
		stdImp = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	})
	return stdImp
}

// loader resolves module-internal imports by recursively loading them
// and everything else through the stdlib source importer.
type loader struct {
	prog    *Program
	loading map[string]bool
}

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.prog.ModPath || strings.HasPrefix(path, l.prog.ModPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return stdImporter().ImportFrom(path, srcDir, mode)
}

// load parses and type-checks one module-internal package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.prog.Pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.prog.ModPath), "/")
	dir := filepath.Join(l.prog.ModDir, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if isIgnoredFile(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, RelPath: rel, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.prog.Pkgs[path] = pkg
	return pkg, nil
}

// isIgnoredFile reports whether the file opts out of the build
// ("//go:build ignore" and friends before the package clause).
func isIgnoredFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, "go:build") && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}

// Load type-checks the packages of the module rooted at dir (the
// directory holding go.mod) selected by patterns. Supported patterns:
// "./..." (every package), "./x" (one package), "./x/..." (a subtree).
// Test files are never loaded: pnnvet checks the shipped code.
//
// The returned slice holds the pattern-matched target packages in
// path order; the Program additionally holds every module-internal
// dependency that was pulled in.
func Load(dir string, patterns ...string) (*Program, []*Package, error) {
	modDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	modPath, err := modulePath(modDir)
	if err != nil {
		return nil, nil, err
	}
	prog := &Program{
		ModPath: modPath,
		ModDir:  modDir,
		Fset:    sharedFset,
		Pkgs:    make(map[string]*Package),
	}
	l := &loader{prog: prog, loading: make(map[string]bool)}

	rels, err := matchPatterns(modDir, patterns)
	if err != nil {
		return nil, nil, err
	}
	var targets []*Package
	for _, rel := range rels {
		path := modPath
		if rel != "" {
			path += "/" + rel
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, nil, err
		}
		targets = append(targets, pkg)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Path < targets[j].Path })
	return prog, targets, nil
}

// modulePath reads the module path out of dir/go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}

// matchPatterns expands patterns into module-relative package dirs.
func matchPatterns(modDir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var rels []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			rels = append(rels, rel)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(strings.TrimSuffix(pat, "/"), "./")
		switch {
		case pat == "..." || pat == ".":
			subtree, err := packageDirs(modDir, "")
			if err != nil {
				return nil, err
			}
			for _, rel := range subtree {
				add(rel)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			subtree, err := packageDirs(modDir, filepath.FromSlash(base))
			if err != nil {
				return nil, err
			}
			for _, rel := range subtree {
				add(rel)
			}
		default:
			add(filepath.ToSlash(filepath.FromSlash(pat)))
		}
	}
	sort.Strings(rels)
	return rels, nil
}

// packageDirs walks the subtree under modDir/base collecting every
// directory holding non-test Go files, skipping hidden directories,
// underscore directories, and testdata trees.
func packageDirs(modDir, base string) ([]string, error) {
	root := filepath.Join(modDir, base)
	var rels []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(modDir, filepath.Dir(path))
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		rels = append(rels, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	// De-duplicate (one entry per file above).
	out := rels[:0]
	for i, rel := range rels {
		if i == 0 || rels[i-1] != rel {
			out = append(out, rel)
		}
	}
	return out, nil
}
