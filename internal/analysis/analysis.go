// Package analysis implements pnnvet, the project-invariant analyzer
// suite: six checkers over go/ast + go/types that encode the invariants
// this codebase's correctness rests on — stable error-code/status
// pairing, errors.Is for sentinels, lock discipline on the serving
// path, caller-owned query results, context flow on request paths, and
// determinism of the quantification packages. The suite is pure
// standard library: packages are loaded and type-checked by load.go,
// no external analysis framework.
//
// A diagnostic can be suppressed at the offending line (or the line
// directly above it) with a justified directive:
//
//	//pnnvet:ignore <rule> -- <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// Suppressions are grep-able by design.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single package and
// reports findings through the pass.
type Analyzer struct {
	// Name is the rule name used in output and ignore directives.
	Name string
	// Doc is the one-line invariant the analyzer encodes.
	Doc string
	// Run analyzes pass.Pkg. Analyzers scope themselves: a package
	// outside the analyzer's remit returns without diagnostics.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, package) run.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Prog.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All is the pnnvet analyzer suite.
var All = []*Analyzer{
	ErrCode,
	SentinelCmp,
	LockDiscipline,
	CallerOwned,
	CtxFlow,
	NonDeterminism,
}

// Run applies every analyzer in suite to every target package, applies
// the ignore directives found in the targets' sources, and returns the
// surviving diagnostics in file/line order. Malformed directives (no
// "-- reason") are reported as rule "ignore".
func Run(prog *Program, targets []*Package, suite []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range targets {
		for _, a := range suite {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg}
			a.Run(pass)
			diags = append(diags, pass.diags...)
		}
	}
	ignores, malformed := collectIgnores(prog, targets)
	diags = append(diags, malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if !ignores.covers(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return kept
}

// ignoreSet records, per file and line, which rules are suppressed.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) add(file string, line int, rule string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	rules := lines[line]
	if rules == nil {
		rules = make(map[string]bool)
		lines[line] = rules
	}
	rules[rule] = true
}

// covers reports whether d is suppressed: a directive for its rule (or
// "all") sits on the same line or the line directly above.
func (s ignoreSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if rules := lines[line]; rules != nil && (rules[d.Rule] || rules["all"]) {
			return true
		}
	}
	return false
}

const ignorePrefix = "//pnnvet:ignore"

// collectIgnores scans target sources for ignore directives. A
// directive names one or more comma-separated rules and must justify
// itself after " -- "; `//pnnvet:ignore errcode -- helper validated at
// construction` is well-formed, a reasonless directive is reported.
func collectIgnores(prog *Program, targets []*Package) (ignoreSet, []Diagnostic) {
	ignores := make(ignoreSet)
	var malformed []Diagnostic
	known := make(map[string]bool, len(All)+1)
	known["all"] = true
	for _, a := range All {
		known[a.Name] = true
	}
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
					rules, reason, ok := strings.Cut(rest, "--")
					reason = strings.TrimSpace(reason)
					var names []string
					for _, name := range strings.Split(strings.TrimSpace(rules), ",") {
						if name = strings.TrimSpace(name); name != "" {
							names = append(names, name)
						}
					}
					bad := !ok || reason == "" || len(names) == 0
					for _, name := range names {
						if !known[name] {
							bad = true
						}
					}
					if !bad {
						for _, name := range names {
							ignores.add(pos.Filename, pos.Line, name)
						}
					} else {
						malformed = append(malformed, Diagnostic{
							Pos:  pos,
							Rule: "ignore",
							Message: fmt.Sprintf("malformed directive %q: want %s <rule>[,<rule>] -- <reason>",
								c.Text, ignorePrefix),
						})
					}
				}
			}
		}
	}
	return ignores, malformed
}

// inspect walks every file of the package, calling fn on each node.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
