package analysis

import (
	"go/ast"
	"go/types"
)

// LockDiscipline enforces two lock rules. Everywhere: no sync.Mutex or
// sync.RWMutex copied by value (signatures, receivers, assignments,
// range variables). In the serving packages (server, store,
// server/shard, server/engine): no mutex held across a channel send, a
// sync.WaitGroup.Wait, or an outbound HTTP call — the exact shape of
// the PR-5 registry-refresh and batcher-retirement races, where a
// blocking operation under a lock turned a mutation race into a
// deadlock or a stalled drop path. sync.Cond.Wait is exempt (holding
// the lock is its contract).
//
// The held-across check is a per-function, branch-local approximation:
// it tracks Lock/RLock…Unlock/RUnlock windows in statement order
// (deferred unlocks hold to function end) and does not follow calls.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no lock copies; no lock held across channel send, WaitGroup.Wait, or outbound HTTP",
	Run:  runLockDiscipline,
}

// heldAcrossPackages are the module-relative packages the held-across
// sub-rule patrols.
var heldAcrossPackages = map[string]bool{
	"server":        true,
	"store":         true,
	"server/shard":  true,
	"server/engine": true,
}

func runLockDiscipline(pass *Pass) {
	checkCopies(pass)
	if heldAcrossPackages[pass.Pkg.RelPath] {
		checkHeldAcross(pass)
	}
}

// checkCopies flags mutexes moved by value.
func checkCopies(pass *Pass) {
	info := pass.Pkg.Info
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := info.TypeOf(f.Type)
			if t != nil && containsLock(t) {
				pass.Reportf(f.Type.Pos(), "%s passes a lock by value; use a pointer", what)
			}
		}
	}
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(n.Recv, "receiver")
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if !isAddressableExpr(rhs) {
					continue // fresh values (literals, calls) are not copies of a shared lock
				}
				if t := info.TypeOf(rhs); t != nil && containsLock(t) {
					pass.Reportf(rhs.Pos(), "assignment copies a lock; use a pointer")
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := info.TypeOf(n.Value); t != nil && containsLock(t) {
					pass.Reportf(n.Value.Pos(), "range variable copies a lock; range over pointers")
				}
			}
		}
		return true
	})
}

func isAddressableExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		return isAddressableExpr(e.X)
	}
	return false
}

// lockKind classifies one call as acquiring or releasing a mutex.
type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// lockScanner tracks held-lock windows through one function body.
type lockScanner struct {
	pass *Pass
	info *types.Info
}

// classifyLock recognizes m.Lock/m.RLock/m.Unlock/m.RUnlock where m is
// a sync.Mutex or sync.RWMutex (possibly behind a pointer), returning
// a stable key naming the lock.
func (s *lockScanner) classifyLock(call *ast.CallExpr) (key string, kind lockKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	recv := s.info.TypeOf(sel.X)
	if recv == nil || (!isNamed(recv, "sync", "Mutex") && !isNamed(recv, "sync", "RWMutex")) {
		return "", lockNone
	}
	key = types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return key, lockAcquire
	case "Unlock", "RUnlock":
		return key, lockRelease
	}
	return "", lockNone
}

// isBlockingCall recognizes the calls that must not run under a lock:
// sync.WaitGroup.Wait and the net/http request functions.
func (s *lockScanner) isBlockingCall(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(s.info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch {
	case fn.Name() == "Wait" && fn.Pkg().Path() == "sync":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			isNamed(sig.Recv().Type(), "sync", "WaitGroup") {
			return "sync.WaitGroup.Wait", true
		}
	case fn.Pkg().Path() == "net/http":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip":
			return "net/http." + fn.Name(), true
		}
	}
	return "", false
}

func checkHeldAcross(pass *Pass) {
	s := &lockScanner{pass: pass, info: pass.Pkg.Info}
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				s.stmts(n.Body.List, map[string]bool{})
			}
		case *ast.FuncLit:
			// Function literals run in their own dynamic context (often a
			// fresh goroutine); scan them with an empty held set.
			s.stmts(n.Body.List, map[string]bool{})
		}
		return true
	})
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func heldName(held map[string]bool) string {
	for k := range held {
		return k
	}
	return "?"
}

// stmts walks one statement list in order, tracking the held set.
// Nested control-flow bodies get a copy of the set: an unlock inside a
// conditional branch (almost always followed by return) does not clear
// the window on the fall-through path.
func (s *lockScanner) stmts(list []ast.Stmt, held map[string]bool) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

func (s *lockScanner) stmt(st ast.Stmt, held map[string]bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, kind := s.classifyLock(call); kind != lockNone {
				if kind == lockAcquire {
					held[key] = true
				} else {
					delete(held, key)
				}
				return
			}
		}
		s.exprs(held, st.X)
	case *ast.SendStmt:
		if len(held) > 0 {
			s.pass.Reportf(st.Arrow, "channel send while holding %s", heldName(held))
		}
		s.exprs(held, st.Chan, st.Value)
	case *ast.DeferStmt:
		if _, kind := s.classifyLock(st.Call); kind == lockRelease {
			// A deferred unlock releases at return: the lock stays held for
			// the remainder of the body, which is exactly what the held set
			// already says.
			return
		}
		s.exprs(held, st.Call.Args...)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the parent's locks; only
		// the argument evaluation runs here.
		s.exprs(held, st.Call.Args...)
	case *ast.AssignStmt:
		s.exprs(held, st.Rhs...)
		s.exprs(held, st.Lhs...)
	case *ast.ReturnStmt:
		s.exprs(held, st.Results...)
	case *ast.BlockStmt:
		s.stmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.exprs(held, st.Cond)
		s.stmts(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.exprs(held, st.Cond)
		}
		s.stmts(st.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		s.exprs(held, st.X)
		s.stmts(st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.exprs(held, st.Tag)
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				s.exprs(held, cc.List...)
				s.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				s.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range st.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && len(held) > 0 {
				s.pass.Reportf(send.Arrow, "channel send (select) while holding %s", heldName(held))
			}
			s.stmts(cc.Body, copyHeld(held))
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.IncDecStmt:
		s.exprs(held, st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					s.exprs(held, vs.Values...)
				}
			}
		}
	}
}

// exprs reports blocking calls inside arbitrary expressions while any
// lock is held. Function literals are skipped: they are scanned as
// their own context.
func (s *lockScanner) exprs(held map[string]bool, list ...ast.Expr) {
	if len(held) == 0 {
		return
	}
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if what, ok := s.isBlockingCall(call); ok {
					s.pass.Reportf(call.Pos(), "%s while holding %s", what, heldName(held))
				}
			}
			return true
		})
	}
}
