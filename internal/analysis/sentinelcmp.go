package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SentinelCmp flags comparisons of errors against sentinel values with
// == or != (including switch cases over an error tag). Sentinels here
// are package-level variables of error type — ErrClosed,
// ErrSnapshotCorrupt, pnn.ErrInvalidParam, io.EOF, …. Direct equality
// breaks the moment anyone wraps the sentinel with %w, which is
// exactly how the store and server layers propagate them; errors.Is
// matches wrapped and unwrapped alike.
var SentinelCmp = &Analyzer{
	Name: "sentinelcmp",
	Doc:  "compare sentinel errors with errors.Is/errors.As, never == or !=",
	Run:  runSentinelCmp,
}

func runSentinelCmp(pass *Pass) {
	info := pass.Pkg.Info
	sentinel := func(e ast.Expr) types.Object {
		obj := objectOf(info, e)
		v, ok := obj.(*types.Var)
		if !ok || !isPackageLevel(v) || !isErrorType(v.Type()) {
			return nil
		}
		return v
	}
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			for _, side := range [2]ast.Expr{n.X, n.Y} {
				if obj := sentinel(side); obj != nil {
					pass.Reportf(n.Pos(), "%s compared with %s; use errors.Is", obj.Name(), n.Op)
					return true
				}
			}
		case *ast.SwitchStmt:
			if n.Tag == nil || !isErrorType(info.TypeOf(n.Tag)) {
				return true
			}
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if obj := sentinel(e); obj != nil {
						pass.Reportf(e.Pos(), "switch case compares %s by identity; use errors.Is", obj.Name())
					}
				}
			}
		}
		return true
	})
}
