package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow patrols request-path functions: a function that accepts a
// context.Context must neither mint a fresh root context
// (context.Background/context.TODO — which silently detaches the work
// from the caller's deadline and cancellation) nor block the request
// on a wall-clock time.Sleep. It also enforces span threading: a call
// to obs.StartSpan returns a derived context that child spans hang off
// — discarding it (blank identifier, bare expression statement) means
// every span started downstream silently reparents onto the outer
// span, flattening the trace; callers that genuinely want a
// non-propagating child span should say so with obs.LeafSpan.
// Goroutines spawned inside such a function (go func() { … }) are
// deliberately out of scope: detached background work owning a fresh
// context is legitimate, as in the batcher's flush path.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions taking a context must not call context.Background/TODO or time.Sleep, and must thread obs.StartSpan's derived context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasContextParam(info, fd.Type.Params) {
				continue
			}
			checkCtxBody(pass, fd.Body)
		}
	}
}

func hasContextParam(info *types.Info, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, p := range params.List {
		if isNamed(info.TypeOf(p.Type), "context", "Context") {
			return true
		}
	}
	return false
}

func checkCtxBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isObsStartSpan(info, call) {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
						reportDroppedSpanCtx(pass, call)
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isObsStartSpan(info, call) {
				reportDroppedSpanCtx(pass, call)
			}
		case *ast.GoStmt:
			// Detached goroutines may own a fresh context; skip the spawned
			// function but keep checking its synchronously evaluated args.
			for _, arg := range n.Call.Args {
				checkCtxExpr(pass, arg)
			}
			if _, ok := n.Call.Fun.(*ast.FuncLit); !ok {
				checkCtxExpr(pass, n.Call.Fun)
			}
			return false
		case *ast.CallExpr:
			reportCtxCall(pass, info, n)
		}
		return true
	})
}

func checkCtxExpr(pass *Pass, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			reportCtxCall(pass, pass.Pkg.Info, call)
		}
		return true
	})
}

func reportCtxCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO"):
		pass.Reportf(call.Pos(),
			"context.%s inside a context-taking function detaches the request from its deadline; thread the caller's ctx",
			fn.Name())
	case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		pass.Reportf(call.Pos(),
			"time.Sleep on a request path; respect ctx cancellation (timer + select) instead")
	}
}

// isObsStartSpan matches a call to obs.StartSpan by package name, so
// the rule covers the real pnn/internal/obs and testdata twins alike.
func isObsStartSpan(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "obs" && fn.Name() == "StartSpan"
}

func reportDroppedSpanCtx(pass *Pass, call *ast.CallExpr) {
	pass.Reportf(call.Pos(),
		"obs.StartSpan's derived context is discarded, so downstream spans reparent onto the outer span; pass it onward or use obs.LeafSpan")
}
