// Package baseline implements the comparison methods from the paper's
// related-work section: brute-force NN≠0 evaluation (Lemma 2.1 applied
// directly), per-query Monte Carlo without preprocessing, and the
// numerical-integration quantification of [CKP04] for continuous
// distributions (Eq. 1 integrated by adaptive Simpson). Every accelerated
// structure in this repository is benchmarked against these.
package baseline

import (
	"math"
	"math/rand"

	"pnn/internal/core"
	"pnn/internal/dist"
	"pnn/internal/geom"
)

// NonzeroBrute is the O(n)-per-query oracle for disks.
func NonzeroBrute(disks []geom.Disk, q geom.Point) []int {
	return core.NonzeroSet(disks, q)
}

// NonzeroBruteDiscrete is the O(nk)-per-query oracle for discrete points.
func NonzeroBruteDiscrete(pts []core.DiscretePoint, q geom.Point) []int {
	return core.NonzeroSetDiscrete(pts, q)
}

// MonteCarloPerQuery estimates π_i(q) with s fresh instantiations and no
// preprocessing: O(s·n) per query, the naive counterpart of Section 4.2.
func MonteCarloPerQuery(pts []*dist.Discrete, q geom.Point, s int, r *rand.Rand) []float64 {
	pi := make([]float64, len(pts))
	if s <= 0 {
		return pi
	}
	inc := 1 / float64(s)
	for round := 0; round < s; round++ {
		best := -1
		bestD := math.Inf(1)
		for i, p := range pts {
			if d := p.SamplePoint(r).Dist2(q); d < bestD {
				bestD = d
				best = i
			}
		}
		if best >= 0 {
			pi[best] += inc
		}
	}
	return pi
}

// IntegrateQuantification evaluates Eq. (1) for continuous uncertain
// points by one-dimensional quadrature:
//
//	π_i(q) = ∫ g_{q,i}(r) · Π_{j≠i} (1 − G_{q,j}(r)) dr
//
// over the support [δ_i(q), Δ_i(q)], using composite Simpson with the
// given number of panels. This is the [CKP04]-style numerical approach the
// paper calls "quite expensive": each evaluation needs all n cdfs.
func IntegrateQuantification(pts []dist.Continuous, q geom.Point, i int, panels int) float64 {
	if panels < 8 {
		panels = 8
	}
	sup := pts[i].SupportDisk()
	lo := sup.MinDist(q)
	hi := sup.MaxDist(q)
	if hi <= lo {
		return 0
	}
	f := func(r float64) float64 {
		v := pts[i].DistPDF(q, r)
		if v == 0 {
			return 0
		}
		for j, p := range pts {
			if j == i {
				continue
			}
			v *= 1 - p.DistCDF(q, r)
			if v == 0 {
				return 0
			}
		}
		return v
	}
	return simpson(f, lo, hi, panels)
}

// IntegrateAll evaluates Eq. (1) for every i.
func IntegrateAll(pts []dist.Continuous, q geom.Point, panels int) []float64 {
	out := make([]float64, len(pts))
	for i := range pts {
		out[i] = IntegrateQuantification(pts, q, i, panels)
	}
	return out
}

func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	s := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 0 {
			s += 2 * f(x)
		} else {
			s += 4 * f(x)
		}
	}
	return s * h / 3
}
