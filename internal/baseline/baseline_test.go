package baseline

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/dist"
	"pnn/internal/geom"
)

func TestIntegrateSymmetricDisks(t *testing.T) {
	// Two congruent disjoint uniform disks, query on the symmetry axis:
	// π_0 = π_1 = 1/2.
	pts := []dist.Continuous{
		dist.UniformDisk{D: geom.Dsk(0, 0, 1)},
		dist.UniformDisk{D: geom.Dsk(10, 0, 1)},
	}
	pi := IntegrateAll(pts, geom.Pt(5, 0), 512)
	if math.Abs(pi[0]-0.5) > 1e-3 || math.Abs(pi[1]-0.5) > 1e-3 {
		t.Fatalf("π = %v", pi)
	}
}

func TestIntegrateDominatedDisk(t *testing.T) {
	// A disk strictly farther than another in every instantiation has
	// probability 0; the near one has probability 1.
	pts := []dist.Continuous{
		dist.UniformDisk{D: geom.Dsk(0, 0, 1)},
		dist.UniformDisk{D: geom.Dsk(50, 0, 1)},
	}
	pi := IntegrateAll(pts, geom.Pt(0, 0), 512)
	if math.Abs(pi[0]-1) > 1e-6 {
		t.Fatalf("π_0 = %v want 1", pi[0])
	}
	if pi[1] != 0 {
		t.Fatalf("π_1 = %v want 0", pi[1])
	}
}

func TestIntegrateSumsToOne(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		n := 2 + r.Intn(4)
		pts := make([]dist.Continuous, n)
		for i := range pts {
			pts[i] = dist.UniformDisk{
				D: geom.Dsk(r.Float64()*20, r.Float64()*20, 0.5+r.Float64()*2),
			}
		}
		q := geom.Pt(r.Float64()*20, r.Float64()*20)
		pi := IntegrateAll(pts, q, 1024)
		sum := 0.0
		for _, p := range pi {
			sum += p
		}
		if math.Abs(sum-1) > 5e-3 {
			t.Fatalf("trial %d: Σπ = %v", trial, sum)
		}
	}
}

func TestIntegrateAgainstMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	uds := []dist.UniformDisk{
		{D: geom.Dsk(0, 0, 2)},
		{D: geom.Dsk(3, 1, 1.5)},
		{D: geom.Dsk(-1, 4, 1)},
	}
	pts := make([]dist.Continuous, len(uds))
	discs := make([]*dist.Discrete, len(uds))
	for i, u := range uds {
		pts[i] = u
		discs[i] = dist.DiscretizeContinuous(u, 400, r)
	}
	q := geom.Pt(1, 1)
	want := IntegrateAll(pts, q, 1024)
	got := MonteCarloPerQuery(discs, q, 60000, r)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.02 {
			t.Fatalf("π_%d: integration %v vs MC %v", i, want[i], got[i])
		}
	}
}

func TestMonteCarloPerQueryDegenerate(t *testing.T) {
	pi := MonteCarloPerQuery(nil, geom.Pt(0, 0), 10, rand.New(rand.NewSource(3)))
	if len(pi) != 0 {
		t.Fatal("no points, no probabilities")
	}
}
