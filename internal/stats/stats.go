// Package stats provides the small statistical toolkit the experiment
// harness uses: summaries of sample sets and log–log regression for
// estimating growth exponents (the harness fits measured diagram
// complexities against n to compare with the paper's Θ(n³), Θ(n²), Θ(N⁴)
// claims).
package stats

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P90, P99         float64
}

// Summarize computes descriptive statistics of xs (which is not modified).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum, sum2 := 0.0, 0.0
	for _, x := range sorted {
		sum += x
		sum2 += x * x
	}
	s.Mean = sum / float64(len(xs))
	v := sum2/float64(len(xs)) - s.Mean*s.Mean
	if v > 0 {
		s.Std = math.Sqrt(v)
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already sorted slice
// by linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// LogLogSlope fits log(y) = a + b·log(x) by least squares and returns the
// exponent b — the measured growth rate. Points with non-positive x or y
// are skipped. It returns 0 when fewer than two usable points remain.
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return 0
	}
	n := float64(len(lx))
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// MaxAbsDiff returns max_i |a_i − b_i| (the ∞-norm error the ε-guarantees
// of Section 4 bound). Slices must have equal length.
func MaxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
