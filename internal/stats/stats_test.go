package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 10, 20, 30, 40}
	if q := Quantile(xs, 0.5); q != 20 {
		t.Fatalf("median %v", q)
	}
	if q := Quantile(xs, 0.25); q != 10 {
		t.Fatalf("q25 %v", q)
	}
	if q := Quantile(xs, 0); q != 0 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 40 {
		t.Fatalf("q1 %v", q)
	}
}

func TestLogLogSlopeExact(t *testing.T) {
	// y = 7x³ must fit slope 3 exactly.
	xs := []float64{2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 7 * x * x * x
	}
	if b := LogLogSlope(xs, ys); math.Abs(b-3) > 1e-12 {
		t.Fatalf("slope %v want 3", b)
	}
}

func TestLogLogSlopeNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := []float64{4, 8, 16, 32, 64, 128}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x * (1 + 0.05*(r.Float64()-0.5))
	}
	if b := LogLogSlope(xs, ys); math.Abs(b-2) > 0.1 {
		t.Fatalf("noisy slope %v want ≈ 2", b)
	}
}

func TestLogLogSlopeDegenerate(t *testing.T) {
	if b := LogLogSlope([]float64{1}, []float64{1}); b != 0 {
		t.Fatalf("single point slope %v", b)
	}
	if b := LogLogSlope([]float64{-1, 2}, []float64{1, 0}); b != 0 {
		t.Fatalf("invalid points slope %v", b)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float64{1, 2, 3}, []float64{1.5, 2, 2}); d != 1 {
		t.Fatalf("max abs diff %v", d)
	}
}
