// Package linf implements the L∞ variant of nonzero-NN search from
// Section 3, Remark (ii) of the paper: uncertainty regions are L∞ balls
// (axis-aligned squares) and distances are Chebyshev. The paper notes the
// two-stage structure carries over — stage 1 computes the L∞ weighted
// envelope Δ∞(q), stage 2 reports axis-aligned squares intersecting a
// query square. Both stages here use a best-first kd-tree with L∞ bounds,
// the same substitution pattern as the L₂ case (DESIGN.md §5).
package linf

import (
	"math"
	"sort"

	"pnn/internal/geom"
)

// Square is the closed L∞ ball {x : ‖x − C‖∞ ≤ R}.
type Square struct {
	C geom.Point
	R float64
}

// Dist returns the Chebyshev distance between two points.
func Dist(a, b geom.Point) float64 {
	return math.Max(math.Abs(a.X-b.X), math.Abs(a.Y-b.Y))
}

// MinDist returns δ∞(q) = max(‖q−C‖∞ − R, 0).
func (s Square) MinDist(q geom.Point) float64 {
	return math.Max(Dist(s.C, q)-s.R, 0)
}

// MaxDist returns Δ∞(q) = ‖q−C‖∞ + R.
func (s Square) MaxDist(q geom.Point) float64 {
	return Dist(s.C, q) + s.R
}

// NonzeroSet returns NN≠0(q) under the L∞ metric by direct evaluation of
// Lemma 2.1 (which is metric-agnostic) in O(n), excluding j = i as in the
// L₂ oracle.
func NonzeroSet(squares []Square, q geom.Point) []int {
	return NonzeroSetInto(squares, q, nil)
}

// NonzeroSetInto is NonzeroSet appending into dst (reused from its
// start).
func NonzeroSetInto(squares []Square, q geom.Point, dst []int) []int {
	min1, min2 := math.Inf(1), math.Inf(1)
	argmin := -1
	for j, s := range squares {
		v := s.MaxDist(q)
		switch {
		case v < min1:
			min2 = min1
			min1 = v
			argmin = j
		case v < min2:
			min2 = v
		}
	}
	out := dst[:0]
	for i, s := range squares {
		bound := min1
		if i == argmin {
			bound = min2
		}
		if s.MinDist(q) < bound {
			out = append(out, i)
		}
	}
	return out
}

// Index answers NN≠0 queries under L∞ from a kd-tree over centers with
// per-subtree radius aggregates.
type Index struct {
	squares []Square
	nodes   []node
	order   []int
	root    int
}

type node struct {
	lo, hi      int
	left, right int
	bbox        geom.BBox
	minR, maxR  float64
}

const leafSize = 8

// Build constructs the index in O(n log n).
func Build(squares []Square) *Index {
	ix := &Index{squares: squares, order: make([]int, len(squares))}
	for i := range ix.order {
		ix.order[i] = i
	}
	if len(squares) == 0 {
		ix.root = -1
		return ix
	}
	ix.root = ix.build(0, len(squares))
	return ix
}

func (ix *Index) build(lo, hi int) int {
	bb := geom.EmptyBBox()
	minR, maxR := math.Inf(1), 0.0
	for i := lo; i < hi; i++ {
		s := ix.squares[ix.order[i]]
		bb = bb.Extend(s.C)
		minR = math.Min(minR, s.R)
		maxR = math.Max(maxR, s.R)
	}
	ni := len(ix.nodes)
	ix.nodes = append(ix.nodes, node{lo: lo, hi: hi, left: -1, right: -1, bbox: bb, minR: minR, maxR: maxR})
	if hi-lo <= leafSize {
		return ni
	}
	sub := ix.order[lo:hi]
	if bb.Width() >= bb.Height() {
		sort.Slice(sub, func(a, b int) bool { return ix.squares[sub[a]].C.X < ix.squares[sub[b]].C.X })
	} else {
		sort.Slice(sub, func(a, b int) bool { return ix.squares[sub[a]].C.Y < ix.squares[sub[b]].C.Y })
	}
	mid := (lo + hi) / 2
	l := ix.build(lo, mid)
	r := ix.build(mid, hi)
	ix.nodes[ni].left = l
	ix.nodes[ni].right = r
	return ni
}

// boxDistLInf returns the Chebyshev distance from q to the box (0 inside).
func boxDistLInf(b geom.BBox, q geom.Point) float64 {
	dx := math.Max(0, math.Max(b.MinX-q.X, q.X-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-q.Y, q.Y-b.MaxY))
	return math.Max(dx, dy)
}

// Delta returns Δ∞(q) = min_i (‖q−c_i‖∞ + r_i).
func (ix *Index) Delta(q geom.Point) float64 {
	_, d := ix.nearest(q)
	return d
}

// nearest returns the arg-min index and Δ∞(q).
func (ix *Index) nearest(q geom.Point) (int, float64) {
	if ix.root < 0 {
		return -1, math.Inf(1)
	}
	arg, best := -1, math.Inf(1)
	ix.delta(ix.root, q, &arg, &best)
	return arg, best
}

func (ix *Index) delta(ni int, q geom.Point, arg *int, best *float64) {
	n := &ix.nodes[ni]
	if boxDistLInf(n.bbox, q)+n.minR >= *best {
		return
	}
	if n.left < 0 {
		for i := n.lo; i < n.hi; i++ {
			si := ix.order[i]
			if v := ix.squares[si].MaxDist(q); v < *best {
				*best = v
				*arg = si
			}
		}
		return
	}
	l, r := n.left, n.right
	dl := boxDistLInf(ix.nodes[l].bbox, q) + ix.nodes[l].minR
	dr := boxDistLInf(ix.nodes[r].bbox, q) + ix.nodes[r].minR
	if dr < dl {
		l, r = r, l
	}
	ix.delta(l, q, arg, best)
	ix.delta(r, q, arg, best)
}

// Query returns NN≠0(q) under L∞ in increasing index order.
func (ix *Index) Query(q geom.Point) []int {
	return ix.QueryInto(q, nil)
}

// QueryInto is Query appending into dst (reused from its start) — the
// caller-buffer variant for allocation-flat query loops.
func (ix *Index) QueryInto(q geom.Point, dst []int) []int {
	dst = dst[:0]
	if len(ix.squares) == 0 {
		return dst
	}
	if len(ix.squares) == 1 {
		return append(dst, 0)
	}
	arg, delta := ix.nearest(q)
	out := dst
	ix.report(ix.root, q, delta, &out)
	// Degenerate zero-size regions: the arg-min square reports itself
	// whenever its radius is positive; only when it failed (δ = Δ) does
	// Lemma 2.1's j ≠ i exclusion require the second-minimum scan.
	if arg >= 0 && ix.squares[arg].MinDist(q) >= delta {
		second := math.Inf(1)
		for j, s := range ix.squares {
			if j != arg {
				second = math.Min(second, s.MaxDist(q))
			}
		}
		if ix.squares[arg].MinDist(q) < second {
			out = append(out, arg)
		}
	}
	sort.Ints(out)
	return out
}

func (ix *Index) report(ni int, q geom.Point, bound float64, out *[]int) {
	n := &ix.nodes[ni]
	if boxDistLInf(n.bbox, q)-n.maxR >= bound {
		return
	}
	if n.left < 0 {
		for i := n.lo; i < n.hi; i++ {
			si := ix.order[i]
			if ix.squares[si].MinDist(q) < bound {
				*out = append(*out, si)
			}
		}
		return
	}
	ix.report(n.left, q, bound, out)
	ix.report(n.right, q, bound, out)
}

// Nearest returns the arg-min square of Δ∞ and Δ∞(q) itself — the
// stage-1 bound alone, for callers that merge bounds across several
// structures (the logarithmic-method wrapper in pnn).
func (ix *Index) Nearest(q geom.Point) (int, float64) {
	return ix.nearest(q)
}

// ReportMinDistLess appends to dst every square with δ∞_i(q) < bound —
// stage-2 reporting under a caller-supplied bound. The appended region
// is in no particular order.
func (ix *Index) ReportMinDistLess(q geom.Point, bound float64, dst []int) []int {
	if ix.root < 0 {
		return dst
	}
	out := dst
	ix.report(ix.root, q, bound, &out)
	return out
}
