package linf

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/geom"
)

func randomSquares(r *rand.Rand, n int) []Square {
	sq := make([]Square, n)
	for i := range sq {
		sq[i] = Square{
			C: geom.Pt(r.Float64()*100, r.Float64()*100),
			R: 0.2 + r.Float64()*4,
		}
	}
	return sq
}

func TestChebyshevDistances(t *testing.T) {
	s := Square{C: geom.Pt(0, 0), R: 2}
	q := geom.Pt(5, 1)
	// ‖q‖∞ = 5.
	if got := s.MinDist(q); math.Abs(got-3) > 1e-12 {
		t.Fatalf("δ∞ = %v", got)
	}
	if got := s.MaxDist(q); math.Abs(got-7) > 1e-12 {
		t.Fatalf("Δ∞ = %v", got)
	}
	if got := s.MinDist(geom.Pt(1, 1)); got != 0 {
		t.Fatalf("inside square: δ∞ = %v", got)
	}
}

func TestNonzeroSetBasics(t *testing.T) {
	squares := []Square{
		{C: geom.Pt(0, 0), R: 1},
		{C: geom.Pt(10, 0), R: 1},
	}
	got := NonzeroSet(squares, geom.Pt(0, 0))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("at left square: %v", got)
	}
	got = NonzeroSet(squares, geom.Pt(5, 0))
	if len(got) != 2 {
		t.Fatalf("midpoint: %v", got)
	}
}

func TestIndexAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(200)
		squares := randomSquares(r, n)
		ix := Build(squares)
		for probe := 0; probe < 60; probe++ {
			q := geom.Pt(r.Float64()*120-10, r.Float64()*120-10)
			got := ix.Query(q)
			want := NonzeroSet(squares, q)
			if !eq(got, want) {
				t.Fatalf("trial %d query %v: got %v want %v", trial, q, got, want)
			}
		}
	}
}

func TestIndexDegenerateZeroSize(t *testing.T) {
	// Zero-size squares behave like an L∞ Voronoi diagram of points.
	squares := []Square{
		{C: geom.Pt(0, 0)},
		{C: geom.Pt(10, 0)},
		{C: geom.Pt(5, 9)},
	}
	ix := Build(squares)
	got := ix.Query(geom.Pt(1, 1))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("degenerate: %v", got)
	}
}

func TestIndexEmptyAndSingle(t *testing.T) {
	if got := Build(nil).Query(geom.Pt(0, 0)); got != nil {
		t.Fatalf("empty: %v", got)
	}
	got := Build([]Square{{C: geom.Pt(3, 3), R: 1}}).Query(geom.Pt(50, 50))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("single: %v", got)
	}
}

func TestDeltaAgainstBrute(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	squares := randomSquares(r, 300)
	ix := Build(squares)
	for probe := 0; probe < 100; probe++ {
		q := geom.Pt(r.Float64()*120-10, r.Float64()*120-10)
		want := math.Inf(1)
		for _, s := range squares {
			want = math.Min(want, s.MaxDist(q))
		}
		if got := ix.Delta(q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Δ∞: got %v want %v", got, want)
		}
	}
}

// L∞ and L₂ nonzero sets agree when all regions and gaps are large
// relative to the metric distortion... they need not in general; this
// test only pins the metric-sensitivity: a configuration where the L∞
// answer differs from L₂ (diagonal neighbor wins under L₂ but not L∞).
func TestMetricSensitivity(t *testing.T) {
	squares := []Square{
		{C: geom.Pt(8, 8), R: 0.5},  // L∞ dist from origin: 8; L₂: 11.3
		{C: geom.Pt(0, 10), R: 0.5}, // L∞ dist: 10;           L₂: 10
	}
	q := geom.Pt(0, 0)
	// Under L∞ the diagonal square is strictly closer in both δ and Δ:
	// δ∞_0 = 7.5, Δ∞_0 = 8.5 < δ∞_1 = 9.5 → square 1 excluded.
	got := NonzeroSet(squares, q)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("L∞ answer: %v", got)
	}
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkLInfQuery10k(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	squares := make([]Square, 10000)
	for i := range squares {
		squares[i] = Square{C: geom.Pt(r.Float64()*1000, r.Float64()*1000), R: r.Float64()}
	}
	ix := Build(squares)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(geom.Pt(r.Float64()*1000, r.Float64()*1000))
	}
}
