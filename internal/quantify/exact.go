// Package quantify computes the quantification probabilities π_i(q) — the
// probability that uncertain point P_i is the nearest neighbor of q —
// implementing the three regimes of Section 4 of the paper:
//
//   - exact evaluation of Eq. (2) for discrete distributions, both per
//     query (a sorted sweep) and via the probabilistic Voronoi diagram
//     V_Pr (Theorem 4.2, vpr.go);
//   - the Monte Carlo estimator of Theorems 4.3 and 4.5 (montecarlo.go);
//   - the deterministic spiral-search approximation of Theorem 4.7
//     (spiral.go).
package quantify

import (
	"sort"

	"pnn/internal/dist"
	"pnn/internal/geom"
)

// Location is one possible position of an uncertain point.
type Location struct {
	Owner int // index of the uncertain point
	P     geom.Point
	W     float64 // location probability
}

// Flatten lists all locations of a discrete uncertain-point set.
func Flatten(pts []*dist.Discrete) []Location {
	var out []Location
	for i, p := range pts {
		for t, l := range p.Locs {
			out = append(out, Location{Owner: i, P: l, W: p.W[t]})
		}
	}
	return out
}

// ExactAll returns π_i(q) for every uncertain point by evaluating Eq. (2)
// with a single sorted sweep over all N locations: O(N log N) per query.
//
// The sweep maintains, per owner j, the accumulated probability
// G_{q,j}(d) of locations within the current distance, and the running
// product Π_j (1 − G_{q,j}(d)) in zero-aware form so owners whose whole
// mass is inside the current radius (factor exactly 0) never force a
// division by zero.
func ExactAll(pts []*dist.Discrete, q geom.Point) []float64 {
	locs := Flatten(pts)
	return ExactSubset(locs, len(pts), q)
}

// ExactSubset evaluates Eq. (2) restricted to the given locations (which
// need not cover full probability mass — the spiral-search estimator of
// Section 4.3 calls it with the m nearest locations only). n is the number
// of owners.
func ExactSubset(locs []Location, n int, q geom.Point) []float64 {
	type rec struct {
		d2 float64
		Location
	}
	recs := make([]rec, len(locs))
	for i, l := range locs {
		recs[i] = rec{d2: l.P.Dist2(q), Location: l}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].d2 < recs[b].d2 })

	pi := make([]float64, n)
	factor := make([]float64, n) // 1 − G_{q,j}(current distance)
	for j := range factor {
		factor[j] = 1
	}
	nzProd := 1.0 // product of nonzero factors
	zeros := 0

	for lo := 0; lo < len(recs); {
		hi := lo
		for hi < len(recs) && recs[hi].d2 <= recs[lo].d2 {
			hi++
		}
		// First fold the whole equal-distance group into the cdfs: Eq. (2)
		// uses G(d(p,q)) with a non-strict inequality, so ties count.
		for t := lo; t < hi; t++ {
			o := recs[t].Owner
			old := factor[o]
			nf := old - recs[t].W
			if nf < 1e-15 {
				nf = 0
			}
			if old > 0 && nf == 0 {
				zeros++
				nzProd /= old
			} else if old > 0 {
				nzProd *= nf / old
			}
			factor[o] = nf
		}
		// Then credit each location in the group: w · Π_{j≠owner} factor_j.
		// The owner's own factor is excluded from the product entirely
		// (Eq. 2 multiplies over j ≠ i only), so its value is divided back
		// out — or, when it is exactly zero, the zero-count bookkeeping
		// recovers the product of the remaining factors.
		for t := lo; t < hi; t++ {
			o := recs[t].Owner
			var others float64
			switch {
			case zeros == 0:
				others = nzProd / factor[o]
			case zeros == 1 && factor[o] == 0:
				others = nzProd
			default:
				others = 0
			}
			pi[o] += recs[t].W * others
		}
		lo = hi
	}
	return pi
}

// exactNaive recomputes Eq. (2) directly in O(N²); it is the oracle the
// sweep is tested against and is exported within the package for tests.
func exactNaive(locs []Location, n int, q geom.Point) []float64 {
	pi := make([]float64, n)
	for _, l := range locs {
		d := l.P.Dist(q)
		prod := 1.0
		for j := 0; j < n; j++ {
			if j == l.Owner {
				continue
			}
			g := 0.0
			for _, m := range locs {
				if m.Owner == j && m.P.Dist(q) <= d {
					g += m.W
				}
			}
			prod *= 1 - g
		}
		pi[l.Owner] += l.W * prod
	}
	return pi
}

// Positive filters a probability vector into (index, value) pairs with
// value > eps, the report format of the PNN problem.
func Positive(pi []float64, eps float64) []IndexProb {
	var out []IndexProb
	for i, p := range pi {
		if p > eps {
			out = append(out, IndexProb{I: i, P: p})
		}
	}
	return out
}

// IndexProb pairs an uncertain-point index with its probability.
type IndexProb struct {
	I int
	P float64
}
