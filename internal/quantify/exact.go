// Package quantify computes the quantification probabilities π_i(q) — the
// probability that uncertain point P_i is the nearest neighbor of q —
// implementing the three regimes of Section 4 of the paper:
//
//   - exact evaluation of Eq. (2) for discrete distributions, both per
//     query (a sorted sweep) and via the probabilistic Voronoi diagram
//     V_Pr (Theorem 4.2, vpr.go);
//   - the Monte Carlo estimator of Theorems 4.3 and 4.5 (montecarlo.go);
//   - the deterministic spiral-search approximation of Theorem 4.7
//     (spiral.go).
package quantify

import (
	"cmp"
	"slices"
	"sync"

	"pnn/internal/dist"
	"pnn/internal/geom"
)

// Location is one possible position of an uncertain point.
type Location struct {
	Owner int // index of the uncertain point
	P     geom.Point
	W     float64 // location probability
}

// Flatten lists all locations of a discrete uncertain-point set.
func Flatten(pts []*dist.Discrete) []Location {
	var out []Location
	for i, p := range pts {
		for t, l := range p.Locs {
			out = append(out, Location{Owner: i, P: l, W: p.W[t]})
		}
	}
	return out
}

// ExactAll returns π_i(q) for every uncertain point by evaluating Eq. (2)
// with a single sorted sweep over all N locations: O(N log N) per query.
//
// The sweep maintains, per owner j, the accumulated probability
// G_{q,j}(d) of locations within the current distance, and the running
// product Π_j (1 − G_{q,j}(d)) in zero-aware form so owners whose whole
// mass is inside the current radius (factor exactly 0) never force a
// division by zero.
func ExactAll(pts []*dist.Discrete, q geom.Point) []float64 {
	locs := Flatten(pts)
	return ExactSubset(locs, len(pts), q)
}

// ExactAllInto is ExactAll writing the probability vector into pi, which
// must have length len(pts). Internal sweep scratch is still allocated;
// the point of the variant is that the result reuses caller memory.
func ExactAllInto(pts []*dist.Discrete, q geom.Point, pi []float64) []float64 {
	locs := Flatten(pts)
	return ExactSubsetInto(locs, len(pts), q, pi)
}

// ExactSubset evaluates Eq. (2) restricted to the given locations (which
// need not cover full probability mass — the spiral-search estimator of
// Section 4.3 calls it with the m nearest locations only). n is the number
// of owners.
func ExactSubset(locs []Location, n int, q geom.Point) []float64 {
	return ExactSubsetInto(locs, n, q, make([]float64, n))
}

// subsetRec is one location tagged with its squared query distance.
type subsetRec struct {
	d2 float64
	Location
}

// sortRecs orders recs by distance, allocation-free. Both the dense and
// the sparse sweep sort through this one function, so the two paths
// apply the identical permutation to tied distances and their
// floating-point results stay bitwise equal.
func sortRecs(recs []subsetRec) {
	slices.SortFunc(recs, func(a, b subsetRec) int { return cmp.Compare(a.d2, b.d2) })
}

// sortByOwner orders sparse report entries in increasing owner order.
func sortByOwner(entries []IndexProb) {
	slices.SortFunc(entries, func(a, b IndexProb) int { return cmp.Compare(a.I, b.I) })
}

// sweepRecs runs the Eq. (2) sweep over distance-sorted recs. pi
// accumulates per-owner probabilities (must be zeroed) and factor holds
// 1 − G_{q,j} per owner (must be all ones); both are indexed by
// rec.Owner.
func sweepRecs(recs []subsetRec, pi, factor []float64) {
	nzProd := 1.0 // product of nonzero factors
	zeros := 0

	for lo := 0; lo < len(recs); {
		hi := lo
		for hi < len(recs) && recs[hi].d2 <= recs[lo].d2 {
			hi++
		}
		// First fold the whole equal-distance group into the cdfs: Eq. (2)
		// uses G(d(p,q)) with a non-strict inequality, so ties count.
		for t := lo; t < hi; t++ {
			o := recs[t].Owner
			old := factor[o]
			nf := old - recs[t].W
			if nf < 1e-15 {
				nf = 0
			}
			if old > 0 && nf == 0 {
				zeros++
				nzProd /= old
			} else if old > 0 {
				nzProd *= nf / old
			}
			factor[o] = nf
		}
		// Then credit each location in the group: w · Π_{j≠owner} factor_j.
		// The owner's own factor is excluded from the product entirely
		// (Eq. 2 multiplies over j ≠ i only), so its value is divided back
		// out — or, when it is exactly zero, the zero-count bookkeeping
		// recovers the product of the remaining factors.
		for t := lo; t < hi; t++ {
			o := recs[t].Owner
			var others float64
			switch {
			case zeros == 0:
				others = nzProd / factor[o]
			case zeros == 1 && factor[o] == 0:
				others = nzProd
			default:
				others = 0
			}
			pi[o] += recs[t].W * others
		}
		lo = hi
	}
}

// ExactSubsetInto is ExactSubset writing into pi (length n).
func ExactSubsetInto(locs []Location, n int, q geom.Point, pi []float64) []float64 {
	pi = pi[:n]
	for i := range pi {
		pi[i] = 0
	}
	recs := make([]subsetRec, len(locs))
	for i, l := range locs {
		recs[i] = subsetRec{d2: l.P.Dist2(q), Location: l}
	}
	sortRecs(recs)
	factor := make([]float64, n) // 1 − G_{q,j}(current distance)
	for j := range factor {
		factor[j] = 1
	}
	sweepRecs(recs, pi, factor)
	return pi
}

// sparseScratch is the pooled working set of ExactSubsetPositiveInto:
// everything the compact sweep needs, sized by the subset (m locations,
// at most m distinct owners), never by the full point count.
type sparseScratch struct {
	recs   []subsetRec
	ids    map[int]int // owner → compact id
	owners []int       // compact id → owner
	pi     []float64   // per compact owner
	factor []float64
}

var sparsePool = sync.Pool{New: func() any {
	return &sparseScratch{ids: make(map[int]int)}
}}

// ExactSubsetPositiveInto evaluates Eq. (2) restricted to locs and
// appends the owners with positive probability to dst (reused from its
// start) in increasing owner order. It is the sparse form of
// ExactSubsetInto: owners are remapped to a compact range first, so the
// sweep allocates O(m) scratch (pooled) instead of O(n), and the
// reported values are bitwise identical to the dense sweep's.
func ExactSubsetPositiveInto(locs []Location, q geom.Point, dst []IndexProb) []IndexProb {
	dst = dst[:0]
	sc := sparsePool.Get().(*sparseScratch)
	clear(sc.ids)
	sc.owners = sc.owners[:0]
	recs := sc.recs[:0]
	for _, l := range locs {
		id, ok := sc.ids[l.Owner]
		if !ok {
			id = len(sc.owners)
			sc.ids[l.Owner] = id
			sc.owners = append(sc.owners, l.Owner)
		}
		recs = append(recs, subsetRec{d2: l.P.Dist2(q), Location: Location{Owner: id, P: l.P, W: l.W}})
	}
	sc.recs = recs
	sortRecs(recs)
	m := len(sc.owners)
	if cap(sc.pi) < m {
		sc.pi = make([]float64, m)
		sc.factor = make([]float64, m)
	}
	sc.pi = sc.pi[:m]
	sc.factor = sc.factor[:m]
	for i := 0; i < m; i++ {
		sc.pi[i] = 0
		sc.factor[i] = 1
	}
	sweepRecs(recs, sc.pi, sc.factor)
	for id, p := range sc.pi {
		if p > 0 {
			dst = append(dst, IndexProb{I: sc.owners[id], P: p})
		}
	}
	// Owners were numbered in first-appearance order; restore increasing
	// owner order.
	sortByOwner(dst)
	sparsePool.Put(sc)
	return dst
}

// exactNaive recomputes Eq. (2) directly in O(N²); it is the oracle the
// sweep is tested against and is exported within the package for tests.
func exactNaive(locs []Location, n int, q geom.Point) []float64 {
	pi := make([]float64, n)
	for _, l := range locs {
		d := l.P.Dist(q)
		prod := 1.0
		for j := 0; j < n; j++ {
			if j == l.Owner {
				continue
			}
			g := 0.0
			for _, m := range locs {
				if m.Owner == j && m.P.Dist(q) <= d {
					g += m.W
				}
			}
			prod *= 1 - g
		}
		pi[l.Owner] += l.W * prod
	}
	return pi
}

// Positive filters a probability vector into (index, value) pairs with
// value > eps, the report format of the PNN problem.
func Positive(pi []float64, eps float64) []IndexProb {
	return PositiveInto(pi, eps, nil)
}

// PositiveInto is Positive appending into dst (reused from its start).
func PositiveInto(pi []float64, eps float64, dst []IndexProb) []IndexProb {
	dst = dst[:0]
	for i, p := range pi {
		if p > eps {
			dst = append(dst, IndexProb{I: i, P: p})
		}
	}
	return dst
}

// IndexProb pairs an uncertain-point index with its probability.
type IndexProb struct {
	I int
	P float64
}
