package quantify

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/dist"
	"pnn/internal/geom"
)

func TestExpectedDistanceDiscrete(t *testing.T) {
	p := mustDiscrete(t,
		[]geom.Point{{X: 3, Y: 0}, {X: 0, Y: 4}},
		[]float64{0.25, 0.75})
	q := geom.Pt(0, 0)
	want := 0.25*3 + 0.75*4
	if got := ExpectedDistanceDiscrete(p, q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("E[d] = %v want %v", got, want)
	}
}

func TestExpectedDistanceContinuousFarField(t *testing.T) {
	// Far from a small support, E[d] ≈ distance to the center.
	u := dist.UniformDisk{D: geom.Dsk(0, 0, 0.5)}
	q := geom.Pt(100, 0)
	if got := ExpectedDistanceContinuous(u, q, 256); math.Abs(got-100) > 0.01 {
		t.Fatalf("far-field E[d] = %v", got)
	}
}

func TestExpectedDistanceContinuousAtCenter(t *testing.T) {
	// At the center of a uniform disk of radius R, E[d] = 2R/3.
	u := dist.UniformDisk{D: geom.Dsk(0, 0, 3)}
	got := ExpectedDistanceContinuous(u, geom.Pt(0, 0), 512)
	if math.Abs(got-2) > 1e-3 {
		t.Fatalf("center E[d] = %v want 2", got)
	}
}

func TestExpectedNN(t *testing.T) {
	pts := []*dist.Discrete{
		mustDiscrete(t, []geom.Point{{X: 5, Y: 0}}, []float64{1}),
		mustDiscrete(t, []geom.Point{{X: 2, Y: 0}}, []float64{1}),
	}
	i, d := ExpectedNNDiscrete(pts, geom.Pt(0, 0))
	if i != 1 || math.Abs(d-2) > 1e-12 {
		t.Fatalf("expected NN %d at %v", i, d)
	}
	cs := []dist.Continuous{
		dist.UniformDisk{D: geom.Dsk(5, 0, 1)},
		dist.UniformDisk{D: geom.Dsk(2, 0, 1)},
	}
	ci, _ := ExpectedNNContinuous(cs, geom.Pt(0, 0), 128)
	if ci != 1 {
		t.Fatalf("continuous expected NN %d", ci)
	}
}

// Section 1.2's critique: under large uncertainty the expected-distance NN
// can disagree with the most-probable NN. One concentrated point at
// distance 10 vs one widely spread point whose mass is mostly nearer:
// expected distance favors the concentrated point, probability the spread
// one.
func TestExpectedVsProbabilityDivergence(t *testing.T) {
	pts := []*dist.Discrete{
		// Concentrated at distance 10: E[d] = 10.
		mustDiscrete(t, []geom.Point{{X: 10, Y: 0}}, []float64{1}),
		// Spread: 70% at distance 5, 30% at distance 30: E[d] = 12.5,
		// but it is the nearest point with probability 0.7.
		mustDiscrete(t, []geom.Point{{X: 5, Y: 0}, {X: -30, Y: 0}}, []float64{0.7, 0.3}),
	}
	q := geom.Pt(0, 0)
	expIdx, _ := ExpectedNNDiscrete(pts, q)
	if expIdx != 0 {
		t.Fatalf("expected-distance NN should be the concentrated point, got %d", expIdx)
	}
	pi := ExactAll(pts, q)
	if pi[1] <= pi[0] {
		t.Fatalf("probability ranking should favor the spread point: %v", pi)
	}
}

func TestThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randomPts(r, 8, 3, 40, 5)
	sp := NewSpiral(pts)
	q := geom.Pt(20, 20)
	eps := 0.05
	tau := 0.2
	res := sp.Threshold(q, tau, eps)
	exact := ExactAll(pts, q)
	certain := map[int]bool{}
	for _, i := range res.Certain {
		certain[i] = true
		if exact[i] < tau-1e-9 {
			t.Fatalf("certain index %d has π=%v < τ=%v", i, exact[i], tau)
		}
	}
	possible := map[int]bool{}
	for _, i := range res.Possible {
		possible[i] = true
	}
	// Completeness: every point with π ≥ τ is certain or possible.
	for i, p := range exact {
		if p >= tau && !certain[i] && !possible[i] {
			t.Fatalf("point %d with π=%v ≥ τ missed entirely", i, p)
		}
	}
}

func TestSpiralContinuous(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	// Two symmetric disks: π ≈ 1/2 each at the midpoint.
	cs := []dist.Continuous{
		dist.UniformDisk{D: geom.Dsk(0, 0, 1)},
		dist.UniformDisk{D: geom.Dsk(10, 0, 1)},
	}
	sp := NewSpiralContinuous(cs, 400, r)
	if sp.SamplesPerPoint != 400 {
		t.Fatalf("samples %d", sp.SamplesPerPoint)
	}
	pi := sp.Estimate(geom.Pt(5, 0.01), 0.01)
	if math.Abs(pi[0]-0.5) > 0.06 || math.Abs(pi[1]-0.5) > 0.06 {
		t.Fatalf("π̂ = %v want ≈ [0.5, 0.5]", pi)
	}
	// A query inside one support: that point dominates.
	pi = sp.Estimate(geom.Pt(0, 0), 0.01)
	if pi[0] < 0.9 {
		t.Fatalf("π̂_0 = %v want ≈ 1", pi[0])
	}
}
