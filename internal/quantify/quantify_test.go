package quantify

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/dist"
	"pnn/internal/geom"
)

func mustDiscrete(t testing.TB, locs []geom.Point, w []float64) *dist.Discrete {
	t.Helper()
	d, err := dist.NewDiscrete(locs, w)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func randomPts(r *rand.Rand, n, k int, extent, radius float64) []*dist.Discrete {
	pts := make([]*dist.Discrete, n)
	for i := range pts {
		c := geom.Pt(r.Float64()*extent, r.Float64()*extent)
		locs := make([]geom.Point, k)
		w := make([]float64, k)
		sum := 0.0
		for t := range locs {
			locs[t] = c.Add(geom.Dir(r.Float64() * 2 * math.Pi).Scale(r.Float64() * radius))
			w[t] = 0.5 + r.Float64()
			sum += w[t]
		}
		for t := range w {
			w[t] /= sum
		}
		d, _ := dist.NewDiscrete(locs, w)
		pts[i] = d
	}
	return pts
}

func TestExactTwoCertainPoints(t *testing.T) {
	// Certain points: the nearer one has probability 1.
	pts := []*dist.Discrete{
		mustDiscrete(t, []geom.Point{{X: 0, Y: 0}}, []float64{1}),
		mustDiscrete(t, []geom.Point{{X: 10, Y: 0}}, []float64{1}),
	}
	pi := ExactAll(pts, geom.Pt(1, 0))
	if math.Abs(pi[0]-1) > 1e-12 || math.Abs(pi[1]) > 1e-12 {
		t.Fatalf("π = %v", pi)
	}
}

func TestExactMirrorSymmetry(t *testing.T) {
	// Mirrored configuration: π_0 at q must equal π_1 at the mirrored
	// query (exact ties are avoided by querying off-axis).
	pts := []*dist.Discrete{
		mustDiscrete(t, []geom.Point{{X: -1, Y: 0}, {X: -3, Y: 0}}, []float64{0.5, 0.5}),
		mustDiscrete(t, []geom.Point{{X: 1, Y: 0}, {X: 3, Y: 0}}, []float64{0.5, 0.5}),
	}
	q := geom.Pt(0.37, 0.2)
	qm := geom.Pt(-0.37, 0.2)
	pi := ExactAll(pts, q)
	pim := ExactAll(pts, qm)
	if math.Abs(pi[0]-pim[1]) > 1e-12 || math.Abs(pi[1]-pim[0]) > 1e-12 {
		t.Fatalf("mirror symmetry broken: %v vs %v", pi, pim)
	}
	if math.Abs(pi[0]+pi[1]-1) > 1e-12 {
		t.Fatalf("probabilities must sum to 1: %v", pi)
	}
}

func TestExactTieLosesMassOnlyOnMeasureZero(t *testing.T) {
	// At an exact distance tie Eq. (2) double-blocks both locations (the
	// cdf is defined with ≤). The sweep must reproduce the formula, not
	// "fix" it: here both unit-weight locations tie at distance 1 and each
	// blocks the other, so both probabilities include the tie loss.
	pts := []*dist.Discrete{
		mustDiscrete(t, []geom.Point{{X: -1, Y: 0}}, []float64{1}),
		mustDiscrete(t, []geom.Point{{X: 1, Y: 0}}, []float64{1}),
	}
	pi := ExactAll(pts, geom.Pt(0, 0))
	if pi[0] != 0 || pi[1] != 0 {
		t.Fatalf("tie semantics: %v (Eq. 2 with ≤ gives 0 on ties)", pi)
	}
}

func TestExactHandComputed(t *testing.T) {
	// P_0 at distance 1 (w=0.4) and 3 (w=0.6); P_1 at distance 2 (w=1).
	// π_0 = 0.4·1 + 0.6·(1−1) = 0.4
	// π_1 = 1·(1−0.4) = 0.6
	pts := []*dist.Discrete{
		mustDiscrete(t, []geom.Point{{X: 1, Y: 0}, {X: 3, Y: 0}}, []float64{0.4, 0.6}),
		mustDiscrete(t, []geom.Point{{X: 0, Y: 2}}, []float64{1}),
	}
	pi := ExactAll(pts, geom.Pt(0, 0))
	if math.Abs(pi[0]-0.4) > 1e-12 {
		t.Fatalf("π_0 = %v want 0.4", pi[0])
	}
	if math.Abs(pi[1]-0.6) > 1e-12 {
		t.Fatalf("π_1 = %v want 0.6", pi[1])
	}
}

func TestExactSumsToOne(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(10)
		k := 1 + r.Intn(5)
		pts := randomPts(r, n, k, 50, 5)
		q := geom.Pt(r.Float64()*60-5, r.Float64()*60-5)
		pi := ExactAll(pts, q)
		sum := 0.0
		for _, p := range pi {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: Σπ = %v", trial, sum)
		}
	}
}

func TestExactSweepAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(8)
		k := 1 + r.Intn(4)
		pts := randomPts(r, n, k, 30, 4)
		q := geom.Pt(r.Float64()*40-5, r.Float64()*40-5)
		locs := Flatten(pts)
		want := exactNaive(locs, n, q)
		got := ExactAll(pts, q)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: π_%d sweep %v naive %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestPositiveFilter(t *testing.T) {
	out := Positive([]float64{0, 0.5, 1e-12, 0.3}, 1e-9)
	if len(out) != 2 || out[0].I != 1 || out[1].I != 3 {
		t.Fatalf("positive filter: %+v", out)
	}
}

func TestMonteCarloConvergence(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPts(r, 6, 3, 20, 4)
	q := geom.Pt(10, 10)
	want := ExactAll(pts, q)
	eps := 0.05
	// Use the Chernoff count for a single query point (|Q|=1): tighter
	// than the theorem's union bound but correct for a fixed q.
	s := int(math.Ceil(math.Log(2*6/0.01) / (2 * eps * eps)))
	mc := NewMonteCarloDiscrete(pts, s, r)
	got := mc.Estimate(q)
	for i := range want {
		if math.Abs(got[i]-want[i]) > eps {
			t.Fatalf("π_%d: MC %v exact %v (ε=%v, s=%d)", i, got[i], want[i], eps, s)
		}
	}
}

func TestMonteCarloEstimateSumsToOne(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randomPts(r, 5, 2, 20, 3)
	mc := NewMonteCarloDiscrete(pts, 500, r)
	pi := mc.Estimate(geom.Pt(5, 5))
	sum := 0.0
	nonzero := 0
	for _, p := range pi {
		sum += p
		if p > 0 {
			nonzero++
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Σπ̂ = %v", sum)
	}
	if nonzero > mc.Rounds() {
		t.Fatalf("at most s entries can be positive: %d > %d", nonzero, mc.Rounds())
	}
}

func TestMonteCarloContinuous(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	// Two disjoint uniform disks; by symmetry a midpoint query gives 1/2.
	ps := []dist.Continuous{
		dist.UniformDisk{D: geom.Dsk(0, 0, 1)},
		dist.UniformDisk{D: geom.Dsk(10, 0, 1)},
	}
	mc := NewMonteCarloContinuous(ps, 4000, r)
	pi := mc.Estimate(geom.Pt(5, 0))
	if math.Abs(pi[0]-0.5) > 0.05 || math.Abs(pi[1]-0.5) > 0.05 {
		t.Fatalf("π̂ = %v want ≈ [0.5, 0.5]", pi)
	}
	// A query at the left disk's center is certain.
	pi = mc.Estimate(geom.Pt(0, 0))
	if pi[0] < 0.999 {
		t.Fatalf("π̂_0 = %v want 1", pi[0])
	}
}

func TestSampleCounts(t *testing.T) {
	s := SampleCountDiscrete(10, 3, 0.1, 0.01)
	if s < 100 {
		t.Fatalf("discrete sample count too small: %d", s)
	}
	s2 := SampleCountDiscrete(10, 3, 0.05, 0.01)
	if s2 <= s {
		t.Fatal("halving ε must increase the count")
	}
	if SampleCountContinuous(10, 0.1, 0.01) < s {
		t.Fatal("continuous count must dominate the discrete one")
	}
}

func TestSpiralOneSidedError(t *testing.T) {
	// Lemma 4.6: π̂_i ≤ π_i ≤ π̂_i + ε for every i.
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(8)
		k := 2 + r.Intn(3)
		pts := randomPts(r, n, k, 40, 5)
		sp := NewSpiral(pts)
		eps := []float64{0.3, 0.1, 0.02}[trial%3]
		q := geom.Pt(r.Float64()*50-5, r.Float64()*50-5)
		want := ExactAll(pts, q)
		got := sp.Estimate(q, eps)
		for i := range want {
			if got[i] > want[i]+1e-9 {
				t.Fatalf("trial %d: π̂_%d = %v exceeds π_%d = %v", trial, i, got[i], i, want[i])
			}
			if want[i] > got[i]+eps+1e-9 {
				t.Fatalf("trial %d: π_%d = %v exceeds π̂+ε = %v (ε=%v, m=%d, ρ=%v)",
					trial, i, want[i], got[i]+eps, eps, sp.M(eps), sp.Rho())
			}
		}
	}
}

func TestSpiralRetrievalSize(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randomPts(r, 20, 3, 100, 3)
	sp := NewSpiral(pts)
	if sp.Rho() < 1 {
		t.Fatalf("spread %v < 1", sp.Rho())
	}
	m1 := sp.M(0.1)
	m2 := sp.M(0.01)
	if m2 < m1 {
		t.Fatal("smaller ε needs at least as many locations")
	}
	if m1 > 20*3 {
		t.Fatal("m must be capped at N")
	}
	// Positive estimates are bounded by the number of owners touched.
	out := sp.EstimatePositive(geom.Pt(50, 50), 0.1)
	if len(out) > sp.M(0.1) {
		t.Fatalf("more positive estimates (%d) than retrieved locations (%d)", len(out), sp.M(0.1))
	}
}

// Remark (i) of Section 4.3: dropping locations with weight below ε/k
// distorts probabilities by more than 2ε and inverts the ranking, while
// spiral search keeps its one-sided bound. This reproduces the paper's
// example: p1's nearest location (weight 3ε), a cloud of nMid
// distinct-point locations each with tiny weight 2/nMid, then p2's
// location (weight 5ε). Remaining mass sits at one shared far spot whose
// coincident locations block each other (Eq. 2's ≤ tie semantics), so it
// cannot interfere with the near field.
func TestSpiralAdversarialLightweights(t *testing.T) {
	eps := 0.02
	nMid := 400
	far := geom.Pt(1e6, 0)
	var pts []*dist.Discrete
	pts = append(pts, mustDiscrete(t,
		[]geom.Point{{X: 1, Y: 0}, far}, []float64{3 * eps, 1 - 3*eps}))
	pts = append(pts, mustDiscrete(t,
		[]geom.Point{{X: 0, Y: 30}, far}, []float64{5 * eps, 1 - 5*eps}))
	light := 2 / float64(nMid)
	for i := 0; i < nMid; i++ {
		ang := 2 * math.Pi * float64(i) / float64(nMid)
		pts = append(pts, mustDiscrete(t,
			[]geom.Point{geom.Dir(ang).Scale(10), far},
			[]float64{light, 1 - light}))
	}
	q := geom.Pt(0, 0)
	exact := ExactAll(pts, q)
	// Closed forms: π_1 = 3ε; π_2 = 5ε(1−3ε)(1−2/nMid)^nMid ≈ 5ε(1−3ε)/e².
	if math.Abs(exact[0]-3*eps) > 1e-9 {
		t.Fatalf("π_1 = %v want %v", exact[0], 3*eps)
	}
	want2 := 5 * eps * (1 - 3*eps) * math.Pow(1-light, float64(nMid))
	if math.Abs(exact[1]-want2) > 1e-9 {
		t.Fatalf("π_2 = %v want %v", exact[1], want2)
	}
	if exact[0] <= exact[1] {
		t.Fatalf("instance malformed: π_1=%v ≤ π_2=%v", exact[0], exact[1])
	}

	// Spiral: one-sided bound and ranking preserved.
	sp := NewSpiral(pts)
	got := sp.Estimate(q, eps)
	for i := range exact {
		if got[i] > exact[i]+1e-9 || exact[i] > got[i]+eps+1e-9 {
			t.Fatalf("spiral bound violated at %d: π̂=%v π=%v ε=%v", i, got[i], exact[i], eps)
		}
	}
	if got[0] <= got[1] {
		t.Fatalf("spiral inverts the ranking: π̂_1=%v π̂_2=%v", got[0], got[1])
	}

	// The flawed heuristic: dropping weights < ε/2 errs by > 2ε on p2 and
	// inverts the ranking — the paper's point.
	var kept []Location
	for _, l := range Flatten(pts) {
		if l.W >= eps/2 {
			kept = append(kept, l)
		}
	}
	dropped := ExactSubset(kept, len(pts), q)
	if math.Abs(dropped[1]-exact[1]) <= 2*eps {
		t.Fatalf("drop-light error %v should exceed 2ε", math.Abs(dropped[1]-exact[1]))
	}
	if dropped[0] > dropped[1] {
		t.Fatalf("drop-light should invert the ranking: %v vs %v", dropped[0], dropped[1])
	}
}

func TestVPrMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts := randomPts(r, 4, 2, 10, 2)
	box := geom.BBox{MinX: -5, MinY: -5, MaxX: 15, MaxY: 15}
	v := NewVPr(pts, box)
	if v.Faces() < 2 {
		t.Fatalf("faces %d", v.Faces())
	}
	mismatch := 0
	for probe := 0; probe < 300; probe++ {
		q := geom.Pt(r.Float64()*20-5, r.Float64()*20-5)
		got := v.Query(q)
		want := ExactAll(pts, q)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				mismatch++
				break
			}
		}
	}
	// Queries on or within float-tolerance of a bisector may land in the
	// adjacent cell; the measure of such queries is tiny.
	if mismatch > 3 {
		t.Fatalf("V_Pr disagrees with exact on %d/300 queries", mismatch)
	}
}

func TestVPrOutOfBoxFallback(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randomPts(r, 3, 2, 10, 2)
	v := NewVPr(pts, geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10})
	q := geom.Pt(100, 100)
	got := v.Query(q)
	want := ExactAll(pts, q)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("fallback mismatch: %v vs %v", got, want)
		}
	}
}

func BenchmarkExactSweep(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	pts := randomPts(r, 100, 5, 200, 5)
	q := geom.Pt(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactAll(pts, q)
	}
}

func BenchmarkSpiralQuery(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	pts := randomPts(r, 1000, 5, 1000, 5)
	sp := NewSpiral(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Estimate(geom.Pt(500, 500), 0.05)
	}
}

func BenchmarkMonteCarloQuery(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	pts := randomPts(r, 1000, 4, 1000, 5)
	mc := NewMonteCarloDiscrete(pts, 400, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Estimate(geom.Pt(500, 500))
	}
}
