package quantify

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"pnn/internal/dist"
	"pnn/internal/geom"
	"pnn/internal/kdtree"
)

// NewMonteCarloDiscreteParallel preprocesses the s rounds of Theorem 4.3
// concurrently: rounds are independent, so each worker instantiates and
// indexes its own share. Each round derives its RNG from seed+round, so
// the result is deterministic for a given (seed, s) regardless of worker
// count. workers ≤ 0 uses GOMAXPROCS.
func NewMonteCarloDiscreteParallel(pts []*dist.Discrete, s int, seed int64, workers int) *MonteCarlo {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mc := &MonteCarlo{n: len(pts), rounds: make([]*kdtree.Tree, s)}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			items := make([]kdtree.Item, len(pts))
			for j := range next {
				r := rand.New(rand.NewSource(seed + int64(j)))
				for i, p := range pts {
					items[i] = kdtree.Item{P: p.Locs[p.Sample(r)], ID: i}
				}
				mc.rounds[j] = kdtree.Build(items)
			}
		}()
	}
	for j := 0; j < s; j++ {
		next <- j
	}
	close(next)
	wg.Wait()
	return mc
}

// EstimateParallel answers one query using the given number of workers
// over the rounds; useful when s is large (small ε). workers ≤ 0 uses
// GOMAXPROCS.
func (mc *MonteCarlo) EstimateParallel(q geom.Point, workers int) []float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := len(mc.rounds)
	if s == 0 {
		return make([]float64, mc.n)
	}
	if workers > s {
		workers = s
	}
	counts := make([][]int32, workers)
	var wg sync.WaitGroup
	chunk := (s + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > s {
			hi = s
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make([]int32, mc.n)
			for _, t := range mc.rounds[lo:hi] {
				if it, _, ok := t.Nearest(q); ok {
					local[it.ID]++
				}
			}
			counts[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	total := make([]int32, mc.n)
	for _, local := range counts {
		for i, c := range local {
			total[i] += c
		}
	}
	pi := make([]float64, mc.n)
	inv := 1 / float64(s)
	for i, c := range total {
		pi[i] = float64(c) * inv
	}
	return pi
}

// TopK returns the k largest probabilities as (index, value) pairs in
// decreasing order, breaking ties by index. It serves the top-k variants
// the paper's Section 1.2 surveys (ranking by probability).
func TopK(pi []float64, k int) []IndexProb {
	if k <= 0 {
		return nil
	}
	all := make([]IndexProb, 0, len(pi))
	for i, p := range pi {
		if p > 0 {
			all = append(all, IndexProb{I: i, P: p})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].P != all[b].P {
			return all[a].P > all[b].P
		}
		return all[a].I < all[b].I
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
