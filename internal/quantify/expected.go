package quantify

import (
	"math"
	"math/rand"

	"pnn/internal/dist"
	"pnn/internal/geom"
)

// Expected-distance nearest neighbors — the alternative NN definition of
// the companion paper [AESZ12] that Section 1.2 contrasts with
// quantification probabilities: rank points by E[d(q, P_i)] and return the
// minimizer. The expected distance of each point is computed separately
// (no interaction between points), which is what makes it cheap — and what
// makes it a poor indicator under large uncertainty ([YTX+10]); the
// ExpectedVsProbability experiment demonstrates the divergence.

// ExpectedDistanceDiscrete returns E[d(q, P)] = Σ_t w_t · d(q, p_t).
func ExpectedDistanceDiscrete(p *dist.Discrete, q geom.Point) float64 {
	e := 0.0
	for t, loc := range p.Locs {
		e += p.W[t] * loc.Dist(q)
	}
	return e
}

// ExpectedDistanceContinuous returns E[d(q, P)] = ∫ r·g_q(r) dr over the
// support by Simpson quadrature with the given panel count.
func ExpectedDistanceContinuous(p dist.Continuous, q geom.Point, panels int) float64 {
	if panels < 16 {
		panels = 16
	}
	sup := p.SupportDisk()
	lo := sup.MinDist(q)
	hi := sup.MaxDist(q)
	if hi <= lo {
		return lo
	}
	n := panels
	if n%2 == 1 {
		n++
	}
	h := (hi - lo) / float64(n)
	f := func(r float64) float64 { return r * p.DistPDF(q, r) }
	s := f(lo) + f(hi)
	for i := 1; i < n; i++ {
		x := lo + float64(i)*h
		if i%2 == 0 {
			s += 2 * f(x)
		} else {
			s += 4 * f(x)
		}
	}
	return s * h / 3
}

// ExpectedNNDiscrete returns the index minimizing the expected distance
// and the minimum value.
func ExpectedNNDiscrete(pts []*dist.Discrete, q geom.Point) (int, float64) {
	best, bd := -1, math.Inf(1)
	for i, p := range pts {
		if e := ExpectedDistanceDiscrete(p, q); e < bd {
			best, bd = i, e
		}
	}
	return best, bd
}

// ExpectedNNContinuous returns the index minimizing the expected distance.
func ExpectedNNContinuous(pts []dist.Continuous, q geom.Point, panels int) (int, float64) {
	best, bd := -1, math.Inf(1)
	for i, p := range pts {
		if e := ExpectedDistanceContinuous(p, q, panels); e < bd {
			best, bd = i, e
		}
	}
	return best, bd
}

// Threshold queries — the [DYM+05] variant from Section 1.2: report every
// point whose quantification probability meets a threshold τ. Built on
// spiral search, the one-sided guarantee π̂ ≤ π ≤ π̂ + ε certifies
// membership classes without exact computation.

// ThresholdResult classifies points against a probability threshold.
type ThresholdResult struct {
	// Certain are indices with π̂_i ≥ τ, hence certainly π_i ≥ τ.
	Certain []int
	// Possible are indices with π̂_i < τ ≤ π̂_i + ε: the estimator cannot
	// decide at this ε; callers can re-query with smaller ε or fall back
	// to the exact sweep for just these.
	Possible []int
}

// Threshold reports all points with π_i(q) ≥ tau, classified into certain
// and undecidable-at-ε, in one spiral query.
func (s *Spiral) Threshold(q geom.Point, tau, eps float64) ThresholdResult {
	pi := s.Estimate(q, eps)
	var res ThresholdResult
	for i, p := range pi {
		switch {
		case p >= tau:
			res.Certain = append(res.Certain, i)
		case p+eps >= tau:
			res.Possible = append(res.Possible, i)
		}
	}
	return res
}

// SpiralContinuous extends spiral search to continuous distributions —
// open problem (iii) of the paper — by the discretization route of
// Lemma 4.4: sample m locations from each pdf (uniform weights), then run
// the discrete machinery. With m = k(α) samples per point the additional
// error is at most nα with probability 1 − δ', so Estimate's total error
// bound becomes ε + nα one-sided-ish (the sampling error is two-sided).
type SpiralContinuous struct {
	*Spiral
	// SamplesPerPoint is the m used in the discretization.
	SamplesPerPoint int
}

// NewSpiralContinuous discretizes each continuous point with
// samplesPerPoint draws and builds the spiral structure over the result.
func NewSpiralContinuous(pts []dist.Continuous, samplesPerPoint int, rng *rand.Rand) *SpiralContinuous {
	if samplesPerPoint < 1 {
		samplesPerPoint = 1
	}
	disc := make([]*dist.Discrete, len(pts))
	for i, p := range pts {
		disc[i] = dist.DiscretizeContinuous(p, samplesPerPoint, rng)
	}
	return &SpiralContinuous{Spiral: NewSpiral(disc), SamplesPerPoint: samplesPerPoint}
}
