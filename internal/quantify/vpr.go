package quantify

import (
	"pnn/internal/dist"
	"pnn/internal/geom"
	"pnn/internal/linearr"
)

// VPr is the probabilistic Voronoi diagram of Section 4.1 (Theorem 4.2):
// the arrangement of the O(N²) perpendicular bisectors of all pairs of
// possible locations refines the plane into cells on which every π_i is
// constant. One probability vector is stored per face; queries are point
// location plus a vector lookup, O(log N + t).
//
// The structure is Θ(N⁴) in the worst case (Lemma 4.1) and is therefore
// only viable for small N — exactly the trade the paper makes before
// developing the approximations of Sections 4.2–4.3.
type VPr struct {
	pts  []*dist.Discrete
	arr  *linearr.Arrangement
	prob map[int][]float64 // face id → probability vector
}

// NewVPr builds the diagram within the given bounding box (queries outside
// fall back to the exact sweep).
func NewVPr(pts []*dist.Discrete, box geom.BBox) *VPr {
	var lines []linearr.Line
	var all []geom.Point
	for _, p := range pts {
		all = append(all, p.Locs...)
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i] == all[j] {
				continue
			}
			lines = append(lines, linearr.Bisector(all[i], all[j]))
		}
	}
	v := &VPr{pts: pts, arr: linearr.Build(lines, box)}
	reps := v.arr.FaceRepresentatives()
	v.prob = make(map[int][]float64, len(reps))
	for id, rep := range reps {
		v.prob[id] = ExactAll(pts, rep)
	}
	return v
}

// Faces returns the number of cells of the diagram within the box — the
// complexity quantity of Lemma 4.1.
func (v *VPr) Faces() int { return v.arr.Faces() }

// Vertices returns the number of bisector crossings within the box.
func (v *VPr) Vertices() int { return v.arr.VertexCount() }

// Query returns the probability vector at q: a stored-vector lookup for
// in-box queries, the exact sweep otherwise.
func (v *VPr) Query(q geom.Point) []float64 {
	if id, ok := v.arr.Locate(q); ok {
		if pv, ok := v.prob[id]; ok {
			return pv
		}
	}
	return ExactAll(v.pts, q)
}

// QueryPositive reports all points with π_i(q) > 0.
func (v *VPr) QueryPositive(q geom.Point) []IndexProb {
	return Positive(v.Query(q), 0)
}
