package quantify

import (
	"math/rand"
	"testing"

	"pnn/internal/geom"
	"pnn/internal/workload"
)

// requireSparseMatchesDense asserts that a sparse (index, prob) report
// equals the dense vector's positive entries exactly — same indices, same
// order, bitwise-equal probabilities.
func requireSparseMatchesDense(t *testing.T, sparse []IndexProb, dense []float64) {
	t.Helper()
	want := Positive(dense, 0)
	if len(sparse) != len(want) {
		t.Fatalf("sparse has %d entries, dense has %d positive", len(sparse), len(want))
	}
	for i := range want {
		if sparse[i] != want[i] {
			t.Fatalf("entry %d: sparse %v, dense %v", i, sparse[i], want[i])
		}
	}
}

func TestExactSubsetPositiveMatchesDense(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		pts := workload.RandomDiscrete(r, 30, 4, 60, 5, 3)
		locs := Flatten(pts)
		for _, q := range workload.QueryPoints(r, 40, workload.DiscreteBBox(pts)) {
			dense := ExactSubset(locs, len(pts), q)
			sparse := ExactSubsetPositiveInto(locs, q, nil)
			requireSparseMatchesDense(t, sparse, dense)
		}
	}
}

// The sparse sweep must stay exact on subsets too (the spiral calls it
// with the m nearest locations only), including under coincident
// locations, which exercise the tie-group and zero-factor branches.
func TestExactSubsetPositiveTies(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := workload.RandomDiscrete(r, 12, 3, 10, 2, 2)
	locs := Flatten(pts)
	// Duplicate a few locations across owners to force exact distance ties.
	locs = append(locs, Location{Owner: 0, P: locs[5].P, W: 0.25},
		Location{Owner: 3, P: locs[5].P, W: 0.25})
	for _, q := range workload.QueryPoints(r, 30, workload.DiscreteBBox(pts)) {
		dense := ExactSubset(locs, len(pts), q)
		sparse := ExactSubsetPositiveInto(locs, q, nil)
		requireSparseMatchesDense(t, sparse, dense)
	}
	// A query exactly on a shared location.
	q := locs[5].P
	requireSparseMatchesDense(t, ExactSubsetPositiveInto(locs, q, nil), ExactSubset(locs, len(pts), q))
}

func TestMonteCarloSparseMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := workload.RandomDiscrete(r, 25, 4, 60, 5, 2)
	mc := NewMonteCarloDiscrete(pts, 150, r)
	var buf []IndexProb
	pi := make([]float64, len(pts))
	for _, q := range workload.QueryPoints(r, 40, workload.DiscreteBBox(pts)) {
		dense := mc.Estimate(q)
		buf = mc.EstimatePositiveInto(q, buf)
		requireSparseMatchesDense(t, buf, dense)
		pi = mc.EstimateInto(q, pi)
		for i := range dense {
			if pi[i] != dense[i] {
				t.Fatalf("EstimateInto[%d] = %v, Estimate = %v", i, pi[i], dense[i])
			}
		}
	}
}

func TestSpiralSparseMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := workload.RandomDiscrete(r, 40, 4, 80, 4, 4)
	sp := NewSpiral(pts)
	var buf []IndexProb
	pi := make([]float64, len(pts))
	for _, eps := range []float64{0.2, 0.05, 0.01} {
		for _, q := range workload.QueryPoints(r, 30, workload.DiscreteBBox(pts)) {
			dense := sp.Estimate(q, eps)
			buf = sp.EstimatePositiveInto(q, eps, buf)
			requireSparseMatchesDense(t, buf, dense)
			pi = sp.EstimateInto(q, eps, pi)
			for i := range dense {
				if pi[i] != dense[i] {
					t.Fatalf("EstimateInto[%d] = %v, Estimate = %v", i, pi[i], dense[i])
				}
			}
		}
	}
}

func TestPositiveInto(t *testing.T) {
	pi := []float64{0, 0.5, 0, 0.25, 0.25}
	buf := make([]IndexProb, 0, 8)
	got := PositiveInto(pi, 0, buf)
	want := []IndexProb{{I: 1, P: 0.5}, {I: 3, P: 0.25}, {I: 4, P: 0.25}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("PositiveInto did not reuse the caller buffer")
	}
}

// The kd-tree k-NN must answer identically through the pooled
// no-allocation path and report in increasing distance order.
func TestSpiralBackendsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := workload.RandomDiscrete(r, 30, 3, 50, 3, 2)
	kd := NewSpiral(pts)
	qt := NewSpiralQuadtree(pts)
	for _, q := range workload.QueryPoints(r, 25, workload.DiscreteBBox(pts)) {
		a := kd.Estimate(q, 0.05)
		b := qt.Estimate(q, 0.05)
		for i := range a {
			if diff := a[i] - b[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("kd and quadtree spiral disagree at %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func BenchmarkSparseVsDense(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := workload.RandomDiscrete(r, 2000, 3, 500, 4, 2)
	sp := NewSpiral(pts)
	mc := NewMonteCarloDiscrete(pts, 100, r)
	qs := workload.QueryPoints(r, 128, workload.DiscreteBBox(pts))
	q := func(i int) geom.Point { return qs[i%len(qs)] }

	b.Run("spiral-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp.Estimate(q(i), 0.05)
		}
	})
	b.Run("spiral-sparse", func(b *testing.B) {
		var buf []IndexProb
		for i := 0; i < b.N; i++ {
			buf = sp.EstimatePositiveInto(q(i), 0.05, buf)
		}
	})
	b.Run("mc-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mc.Estimate(q(i))
		}
	})
	b.Run("mc-sparse", func(b *testing.B) {
		var buf []IndexProb
		for i := 0; i < b.N; i++ {
			buf = mc.EstimatePositiveInto(q(i), buf)
		}
	})
}
