package quantify

import (
	"math"
	"math/rand"
	"sync"

	"pnn/internal/dist"
	"pnn/internal/geom"
	"pnn/internal/kdtree"
)

// MonteCarlo is the estimator of Section 4.2: s instantiations of the
// uncertain-point set, each preprocessed for nearest-neighbor queries. A
// query counts, per round, which point's instantiation is the NN of q;
// π̂_i(q) = count_i / s satisfies |π̂_i − π_i| ≤ ε for all i simultaneously
// with probability ≥ 1 − δ when s matches SampleCountDiscrete /
// SampleCountContinuous (Theorems 4.3 and 4.5).
//
// The paper stores each round as a Voronoi diagram with a point-location
// structure; the kd-tree used here answers the same NN query in the same
// logarithmic expected time (DESIGN.md §5).
type MonteCarlo struct {
	n      int
	rounds []*kdtree.Tree
}

// SampleCountDiscrete returns the number of rounds Theorem 4.3 prescribes:
// s = ln(2n|Q|/δ)/(2ε²) with |Q| = O((nk)⁴) candidate queries (one per cell
// of V_Pr, Lemma 4.1).
func SampleCountDiscrete(n, k int, eps, delta float64) int {
	if n < 1 {
		n = 1
	}
	nk := float64(n * k)
	if nk < 2 {
		nk = 2
	}
	logQ := 4 * math.Log(nk)
	s := (math.Log(2*float64(n)) + logQ + math.Log(1/delta)) / (2 * eps * eps)
	if s < 1 {
		return 1
	}
	return int(math.Ceil(s))
}

// SampleCountContinuous returns the rounds for Theorem 4.5:
// s = O(ε⁻² log(n/(εδ))), where the discretization analysis (Lemma 4.4)
// replaces |Q| with O(n¹²ε⁻⁸ log⁴(n/δ)).
func SampleCountContinuous(n int, eps, delta float64) int {
	if n < 1 {
		n = 1
	}
	nf := float64(n)
	logQ := 12*math.Log(math.Max(nf, 2)) + 8*math.Log(1/eps) + 4*math.Log(math.Max(math.Log(math.Max(nf, 2)/delta), 2))
	s := (math.Log(2*nf) + logQ + math.Log(1/delta)) / (2 * eps * eps / 4) // ε/2 budget per Theorem 4.5
	if s < 1 {
		return 1
	}
	return int(math.Ceil(s))
}

// Instantiator produces one random location per uncertain point. Discrete
// and continuous uncertain points both satisfy it.
type Instantiator interface {
	SamplePoint(r *rand.Rand) geom.Point
}

// continuousAdapter lifts dist.Continuous to Instantiator.
type continuousAdapter struct{ c dist.Continuous }

func (a continuousAdapter) SamplePoint(r *rand.Rand) geom.Point { return a.c.Sample(r) }

// NewMonteCarloDiscrete preprocesses s rounds over discrete uncertain
// points in O(s · n log n) time and O(s · n) space (Theorem 4.3).
func NewMonteCarloDiscrete(pts []*dist.Discrete, s int, r *rand.Rand) *MonteCarlo {
	insts := make([]Instantiator, len(pts))
	for i, p := range pts {
		insts[i] = p
	}
	return newMonteCarlo(insts, s, r)
}

// NewMonteCarloContinuous preprocesses s rounds over continuous uncertain
// points (Theorem 4.5); each round instantiates every pdf in O(1).
func NewMonteCarloContinuous(pts []dist.Continuous, s int, r *rand.Rand) *MonteCarlo {
	insts := make([]Instantiator, len(pts))
	for i, p := range pts {
		insts[i] = continuousAdapter{p}
	}
	return newMonteCarlo(insts, s, r)
}

func newMonteCarlo(pts []Instantiator, s int, r *rand.Rand) *MonteCarlo {
	mc := &MonteCarlo{n: len(pts), rounds: make([]*kdtree.Tree, s)}
	items := make([]kdtree.Item, len(pts))
	for j := 0; j < s; j++ {
		for i, p := range pts {
			items[i] = kdtree.Item{P: p.SamplePoint(r), ID: i}
		}
		mc.rounds[j] = kdtree.Build(items)
	}
	return mc
}

// Rounds returns the number of stored instantiations.
func (mc *MonteCarlo) Rounds() int { return len(mc.rounds) }

// Estimate returns π̂_i(q) for all i in O(s log n) time. At most s entries
// are nonzero.
func (mc *MonteCarlo) Estimate(q geom.Point) []float64 {
	pi := make([]float64, mc.n)
	return mc.EstimateInto(q, pi)
}

// EstimateInto is Estimate writing into pi (length n). Counting goes
// through the pooled sparse tally, so beyond pi itself a warm call
// allocates nothing.
func (mc *MonteCarlo) EstimateInto(q geom.Point, pi []float64) []float64 {
	pi = pi[:mc.n]
	for i := range pi {
		pi[i] = 0
	}
	if len(mc.rounds) == 0 {
		return pi
	}
	sc := mcPool.Get().(*mcScratch)
	mc.tally(q, sc)
	inv := 1 / float64(len(mc.rounds))
	for _, i := range sc.hit {
		pi[i] = float64(sc.counts[i]) * inv
	}
	mcPool.Put(sc)
	return pi
}

// mcScratch is the pooled per-query tally: at most s owners are hit per
// query, so tracking the hit set keeps work and clearing O(s), not O(n).
type mcScratch struct {
	counts map[int]int32
	hit    []int // owners with counts > 0, in first-hit order
}

var mcPool = sync.Pool{New: func() any {
	return &mcScratch{counts: make(map[int]int32)}
}}

// tally counts, per owner, the rounds whose nearest instantiation to q
// belongs to that owner.
func (mc *MonteCarlo) tally(q geom.Point, sc *mcScratch) {
	clear(sc.counts)
	sc.hit = sc.hit[:0]
	for _, t := range mc.rounds {
		if it, _, ok := t.Nearest(q); ok {
			if sc.counts[it.ID] == 0 {
				sc.hit = append(sc.hit, it.ID)
			}
			sc.counts[it.ID]++
		}
	}
}

// EstimatePositive returns only the indices with π̂_i(q) > 0 — at most s of
// them, the output-size bound the paper notes.
func (mc *MonteCarlo) EstimatePositive(q geom.Point) []IndexProb {
	return mc.EstimatePositiveInto(q, nil)
}

// EstimatePositiveInto is EstimatePositive appending into dst (reused
// from its start) in increasing index order. The sparse hot path of the
// estimator: no N-length vector is materialized, and the reported
// probabilities are bitwise identical to Estimate's nonzero entries.
func (mc *MonteCarlo) EstimatePositiveInto(q geom.Point, dst []IndexProb) []IndexProb {
	dst = dst[:0]
	if len(mc.rounds) == 0 {
		return dst
	}
	sc := mcPool.Get().(*mcScratch)
	mc.tally(q, sc)
	inv := 1 / float64(len(mc.rounds))
	for _, i := range sc.hit {
		dst = append(dst, IndexProb{I: i, P: float64(sc.counts[i]) * inv})
	}
	sortByOwner(dst)
	mcPool.Put(sc)
	return dst
}
