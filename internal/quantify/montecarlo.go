package quantify

import (
	"math"
	"math/rand"

	"pnn/internal/dist"
	"pnn/internal/geom"
	"pnn/internal/kdtree"
)

// MonteCarlo is the estimator of Section 4.2: s instantiations of the
// uncertain-point set, each preprocessed for nearest-neighbor queries. A
// query counts, per round, which point's instantiation is the NN of q;
// π̂_i(q) = count_i / s satisfies |π̂_i − π_i| ≤ ε for all i simultaneously
// with probability ≥ 1 − δ when s matches SampleCountDiscrete /
// SampleCountContinuous (Theorems 4.3 and 4.5).
//
// The paper stores each round as a Voronoi diagram with a point-location
// structure; the kd-tree used here answers the same NN query in the same
// logarithmic expected time (DESIGN.md §5).
type MonteCarlo struct {
	n      int
	rounds []*kdtree.Tree
}

// SampleCountDiscrete returns the number of rounds Theorem 4.3 prescribes:
// s = ln(2n|Q|/δ)/(2ε²) with |Q| = O((nk)⁴) candidate queries (one per cell
// of V_Pr, Lemma 4.1).
func SampleCountDiscrete(n, k int, eps, delta float64) int {
	if n < 1 {
		n = 1
	}
	nk := float64(n * k)
	if nk < 2 {
		nk = 2
	}
	logQ := 4 * math.Log(nk)
	s := (math.Log(2*float64(n)) + logQ + math.Log(1/delta)) / (2 * eps * eps)
	if s < 1 {
		return 1
	}
	return int(math.Ceil(s))
}

// SampleCountContinuous returns the rounds for Theorem 4.5:
// s = O(ε⁻² log(n/(εδ))), where the discretization analysis (Lemma 4.4)
// replaces |Q| with O(n¹²ε⁻⁸ log⁴(n/δ)).
func SampleCountContinuous(n int, eps, delta float64) int {
	if n < 1 {
		n = 1
	}
	nf := float64(n)
	logQ := 12*math.Log(math.Max(nf, 2)) + 8*math.Log(1/eps) + 4*math.Log(math.Max(math.Log(math.Max(nf, 2)/delta), 2))
	s := (math.Log(2*nf) + logQ + math.Log(1/delta)) / (2 * eps * eps / 4) // ε/2 budget per Theorem 4.5
	if s < 1 {
		return 1
	}
	return int(math.Ceil(s))
}

// Instantiator produces one random location per uncertain point. Discrete
// and continuous uncertain points both satisfy it.
type Instantiator interface {
	SamplePoint(r *rand.Rand) geom.Point
}

// continuousAdapter lifts dist.Continuous to Instantiator.
type continuousAdapter struct{ c dist.Continuous }

func (a continuousAdapter) SamplePoint(r *rand.Rand) geom.Point { return a.c.Sample(r) }

// NewMonteCarloDiscrete preprocesses s rounds over discrete uncertain
// points in O(s · n log n) time and O(s · n) space (Theorem 4.3).
func NewMonteCarloDiscrete(pts []*dist.Discrete, s int, r *rand.Rand) *MonteCarlo {
	insts := make([]Instantiator, len(pts))
	for i, p := range pts {
		insts[i] = p
	}
	return newMonteCarlo(insts, s, r)
}

// NewMonteCarloContinuous preprocesses s rounds over continuous uncertain
// points (Theorem 4.5); each round instantiates every pdf in O(1).
func NewMonteCarloContinuous(pts []dist.Continuous, s int, r *rand.Rand) *MonteCarlo {
	insts := make([]Instantiator, len(pts))
	for i, p := range pts {
		insts[i] = continuousAdapter{p}
	}
	return newMonteCarlo(insts, s, r)
}

func newMonteCarlo(pts []Instantiator, s int, r *rand.Rand) *MonteCarlo {
	mc := &MonteCarlo{n: len(pts), rounds: make([]*kdtree.Tree, s)}
	items := make([]kdtree.Item, len(pts))
	for j := 0; j < s; j++ {
		for i, p := range pts {
			items[i] = kdtree.Item{P: p.SamplePoint(r), ID: i}
		}
		mc.rounds[j] = kdtree.Build(items)
	}
	return mc
}

// Rounds returns the number of stored instantiations.
func (mc *MonteCarlo) Rounds() int { return len(mc.rounds) }

// Estimate returns π̂_i(q) for all i in O(s log n) time. At most s entries
// are nonzero.
func (mc *MonteCarlo) Estimate(q geom.Point) []float64 {
	pi := make([]float64, mc.n)
	if len(mc.rounds) == 0 {
		return pi
	}
	counts := make([]int32, mc.n)
	for _, t := range mc.rounds {
		if it, _, ok := t.Nearest(q); ok {
			counts[it.ID]++
		}
	}
	inv := 1 / float64(len(mc.rounds))
	for i, c := range counts {
		pi[i] = float64(c) * inv
	}
	return pi
}

// EstimatePositive returns only the indices with π̂_i(q) > 0 — at most s of
// them, the output-size bound the paper notes.
func (mc *MonteCarlo) EstimatePositive(q geom.Point) []IndexProb {
	return Positive(mc.Estimate(q), 0)
}
