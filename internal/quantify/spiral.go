package quantify

import (
	"math"
	"sync"

	"pnn/internal/dist"
	"pnn/internal/geom"
	"pnn/internal/kdtree"
	"pnn/internal/quadtree"
)

// Spiral is the deterministic approximation of Section 4.3: retrieve the
// m(ρ, ε) locations of S = ∪P_i nearest to q and evaluate Eq. (2) on that
// subset. Lemma 4.6 guarantees the one-sided error
// π̂_i(q) ≤ π_i(q) ≤ π̂_i(q) + ε. Preprocessing is O(N log N), queries run
// in O(m log N + m log m) with m = m(ρ, ε) — the paper's
// O(ρk log(ρ/ε) + log N) with the kd-tree k-NN standing in for the [AC09]
// structure (DESIGN.md §5).
type Spiral struct {
	n       int
	k       int     // max description complexity
	rho     float64 // spread of location probabilities (Eq. 9)
	backend knnBackend
	locs    []Location
}

// knnBackend retrieves the indices (into locs) of the k locations nearest
// to q. Remark (ii) after Theorem 4.7 discusses backend choices; both the
// kd-tree default and the [Har11]-style quadtree are provided and
// benchmarked against each other. kNearestInto appends into dst (reused
// from its start) using items as item scratch; the kd-tree backend runs
// it allocation-free over pooled buffers, while the experiments-only
// quadtree backend still allocates inside its best-first KNearest (its
// container/heap search has not been given the pooled treatment).
type knnBackend interface {
	kNearest(q geom.Point, k int) []int
	kNearestInto(q geom.Point, k int, dst []int, items []kdtree.Item) ([]int, []kdtree.Item)
}

type kdBackend struct{ t *kdtree.Tree }

func (b kdBackend) kNearest(q geom.Point, k int) []int {
	out, _ := b.kNearestInto(q, k, nil, nil)
	return out
}

func (b kdBackend) kNearestInto(q geom.Point, k int, dst []int, items []kdtree.Item) ([]int, []kdtree.Item) {
	items = b.t.KNearestInto(q, k, items)
	dst = dst[:0]
	for _, it := range items {
		dst = append(dst, it.ID)
	}
	return dst, items
}

type quadBackend struct{ t *quadtree.Tree }

func (b quadBackend) kNearest(q geom.Point, k int) []int {
	near := b.t.KNearest(q, k)
	out := make([]int, len(near))
	for i, it := range near {
		out[i] = it.ID
	}
	return out
}

func (b quadBackend) kNearestInto(q geom.Point, k int, dst []int, items []kdtree.Item) ([]int, []kdtree.Item) {
	dst = dst[:0]
	for _, it := range b.t.KNearest(q, k) {
		dst = append(dst, it.ID)
	}
	return dst, items
}

// NewSpiral preprocesses the uncertain points with the kd-tree backend.
func NewSpiral(pts []*dist.Discrete) *Spiral {
	s := newSpiralCommon(pts)
	items := make([]kdtree.Item, len(s.locs))
	for i, l := range s.locs {
		items[i] = kdtree.Item{P: l.P, ID: i}
	}
	s.backend = kdBackend{kdtree.Build(items)}
	return s
}

// NewSpiralQuadtree preprocesses with the quadtree backend of Remark (ii).
func NewSpiralQuadtree(pts []*dist.Discrete) *Spiral {
	s := newSpiralCommon(pts)
	items := make([]quadtree.Item, len(s.locs))
	for i, l := range s.locs {
		items[i] = quadtree.Item{P: l.P, ID: i}
	}
	s.backend = quadBackend{quadtree.Build(items)}
	return s
}

func newSpiralCommon(pts []*dist.Discrete) *Spiral {
	s := &Spiral{n: len(pts), locs: Flatten(pts)}
	wmin, wmax := math.Inf(1), 0.0
	for _, p := range pts {
		if p.K() > s.k {
			s.k = p.K()
		}
		for _, w := range p.W {
			wmin = math.Min(wmin, w)
			wmax = math.Max(wmax, w)
		}
	}
	if wmin > 0 {
		s.rho = wmax / wmin
	} else {
		s.rho = 1
	}
	return s
}

// Rho returns the spread ρ of location probabilities.
func (s *Spiral) Rho() float64 { return s.rho }

// M returns m(ρ, ε) = ⌈ρk·ln(ρ/ε)⌉ + k − 1, the retrieval size Theorem 4.7
// prescribes (capped at N).
func (s *Spiral) M(eps float64) int {
	if eps <= 0 || eps >= 1 {
		eps = 0.5
	}
	m := int(math.Ceil(s.rho*float64(s.k)*math.Log(s.rho/eps))) + s.k - 1
	if m < s.k {
		m = s.k
	}
	if m > len(s.locs) {
		m = len(s.locs)
	}
	return m
}

// spiralScratch holds the pooled retrieval buffers of the sparse spiral
// query path: m location indices and the m-length location subset.
type spiralScratch struct {
	near  []int
	items []kdtree.Item
	sub   []Location
}

var spiralPool = sync.Pool{New: func() any { return new(spiralScratch) }}

// retrieve fills sc with the m(ρ,ε) locations nearest to q.
func (s *Spiral) retrieve(q geom.Point, eps float64, sc *spiralScratch) {
	m := s.M(eps)
	sc.near, sc.items = s.backend.kNearestInto(q, m, sc.near, sc.items)
	sc.sub = sc.sub[:0]
	for _, li := range sc.near {
		sc.sub = append(sc.sub, s.locs[li])
	}
}

// Estimate returns π̂_i(q) for all i with additive error at most ε:
// π̂_i ≤ π_i ≤ π̂_i + ε.
func (s *Spiral) Estimate(q geom.Point, eps float64) []float64 {
	return s.EstimateInto(q, eps, make([]float64, s.n))
}

// EstimateInto is Estimate writing into pi (length n).
func (s *Spiral) EstimateInto(q geom.Point, eps float64, pi []float64) []float64 {
	sc := spiralPool.Get().(*spiralScratch)
	s.retrieve(q, eps, sc)
	pi = ExactSubsetInto(sc.sub, s.n, q, pi)
	spiralPool.Put(sc)
	return pi
}

// EstimatePositive reports the at most m(ρ,ε) points with positive
// estimates.
func (s *Spiral) EstimatePositive(q geom.Point, eps float64) []IndexProb {
	return s.EstimatePositiveInto(q, eps, nil)
}

// EstimatePositiveInto is EstimatePositive appending into dst (reused
// from its start) in increasing index order. The sparse hot path of
// Theorem 4.7: only the m(ρ,ε) retrieved locations are touched, no
// N-length vector exists anywhere, and the reported probabilities are
// bitwise identical to Estimate's nonzero entries.
func (s *Spiral) EstimatePositiveInto(q geom.Point, eps float64, dst []IndexProb) []IndexProb {
	sc := spiralPool.Get().(*spiralScratch)
	s.retrieve(q, eps, sc)
	dst = ExactSubsetPositiveInto(sc.sub, q, dst)
	spiralPool.Put(sc)
	return dst
}
