package quantify

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/geom"
	"pnn/internal/stats"
)

func TestParallelMonteCarloDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randomPts(r, 10, 3, 40, 5)
	a := NewMonteCarloDiscreteParallel(pts, 200, 7, 1)
	b := NewMonteCarloDiscreteParallel(pts, 200, 7, 8)
	q := geom.Pt(20, 20)
	pa := a.Estimate(q)
	pb := b.Estimate(q)
	if stats.MaxAbsDiff(pa, pb) != 0 {
		t.Fatalf("worker count changed the result: %v vs %v", pa, pb)
	}
}

func TestParallelMonteCarloAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randomPts(r, 8, 3, 30, 4)
	mc := NewMonteCarloDiscreteParallel(pts, 4000, 11, 0)
	q := geom.Pt(15, 15)
	want := ExactAll(pts, q)
	got := mc.Estimate(q)
	if d := stats.MaxAbsDiff(got, want); d > 0.05 {
		t.Fatalf("parallel MC error %v", d)
	}
	// EstimateParallel agrees exactly with the serial Estimate.
	gp := mc.EstimateParallel(q, 4)
	if stats.MaxAbsDiff(got, gp) != 0 {
		t.Fatalf("EstimateParallel differs from Estimate")
	}
}

func TestEstimateParallelDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPts(r, 3, 2, 10, 2)
	mc := NewMonteCarloDiscreteParallel(pts, 3, 5, 0)
	// More workers than rounds.
	got := mc.EstimateParallel(geom.Pt(5, 5), 16)
	sum := 0.0
	for _, p := range got {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mass %v", sum)
	}
}

func TestSpiralQuadtreeBackendAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randomPts(r, 20, 4, 80, 5)
	kd := NewSpiral(pts)
	qt := NewSpiralQuadtree(pts)
	for probe := 0; probe < 50; probe++ {
		q := geom.Pt(r.Float64()*90-5, r.Float64()*90-5)
		a := kd.Estimate(q, 0.05)
		b := qt.Estimate(q, 0.05)
		// Both retrieve the m nearest locations; ties at the m-th distance
		// may differ, so compare against the one-sided bound rather than
		// exact equality.
		exact := ExactAll(pts, q)
		for i := range exact {
			for _, est := range [][]float64{a, b} {
				if est[i] > exact[i]+1e-9 || exact[i] > est[i]+0.05+1e-9 {
					t.Fatalf("backend bound violated at %v idx %d", q, i)
				}
			}
		}
	}
}

func TestTopK(t *testing.T) {
	pi := []float64{0.1, 0, 0.5, 0.2, 0.2}
	top := TopK(pi, 3)
	if len(top) != 3 || top[0].I != 2 || top[1].I != 3 || top[2].I != 4 {
		t.Fatalf("topk: %+v", top)
	}
	if got := TopK(pi, 100); len(got) != 4 {
		t.Fatalf("k beyond positives: %+v", got)
	}
	if got := TopK(pi, 0); got != nil {
		t.Fatalf("k=0: %+v", got)
	}
}

func BenchmarkParallelMCPreprocess(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	pts := randomPts(r, 100, 4, 300, 5)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewMonteCarloDiscrete(pts, 500, r)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewMonteCarloDiscreteParallel(pts, 500, 1, 0)
		}
	})
}

func BenchmarkSpiralBackends(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	pts := randomPts(r, 1000, 4, 1000, 4)
	kd := NewSpiral(pts)
	qt := NewSpiralQuadtree(pts)
	q := geom.Pt(500, 500)
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kd.Estimate(q, 0.05)
		}
	})
	b.Run("quadtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qt.Estimate(q, 0.05)
		}
	})
}
