// Package linearr builds arrangements of lines in the plane, the substrate
// for the probabilistic Voronoi diagram V_Pr of Section 4.1: the O(N²)
// perpendicular bisectors of all location pairs partition the plane into
// O(N⁴) convex cells within which every quantification probability is
// constant (Lemma 4.1).
//
// The arrangement is represented by a vertical slab decomposition clipped
// to a bounding box; trapezoids adjacent across slab boundaries are merged
// with union–find so Faces() reports true arrangement faces, the quantity
// Lemma 4.1 counts.
package linearr

import (
	"math"
	"sort"

	"pnn/internal/geom"
)

// Line is the line a·x + b·y = c. Vertical lines (b = 0) are supported.
type Line struct {
	A, B, C float64
}

// LineThrough returns the line through two points.
func LineThrough(p, q geom.Point) Line {
	a := q.Y - p.Y
	b := p.X - q.X
	return Line{A: a, B: b, C: a*p.X + b*p.Y}
}

// Bisector returns the perpendicular bisector of p and q.
func Bisector(p, q geom.Point) Line {
	a := 2 * (q.X - p.X)
	b := 2 * (q.Y - p.Y)
	c := q.Norm2() - p.Norm2()
	return Line{A: a, B: b, C: c}
}

// YAtX returns the y-coordinate at x; ok is false for vertical lines.
func (l Line) YAtX(x float64) (float64, bool) {
	if l.B == 0 {
		return 0, false
	}
	return (l.C - l.A*x) / l.B, true
}

// Intersect returns the intersection point of two lines; ok is false for
// parallel lines.
func (l Line) Intersect(m Line) (geom.Point, bool) {
	det := l.A*m.B - l.B*m.A
	if det == 0 {
		return geom.Point{}, false
	}
	x := (l.C*m.B - l.B*m.C) / det
	y := (l.A*m.C - l.C*m.A) / det
	return geom.Pt(x, y), true
}

// Side returns the sign of a·x + b·y − c at p.
func (l Line) Side(p geom.Point) int {
	v := l.A*p.X + l.B*p.Y - l.C
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// Arrangement is the slab decomposition of a set of lines within a box.
type Arrangement struct {
	Lines []Line
	Box   geom.BBox

	xs       []float64 // slab boundaries (vertex x-coords + box edges)
	slabs    [][]int   // per slab: line indices sorted by y at slab middle
	vertices []geom.Point
	faceID   [][]int // per slab, per gap (len(lines)+1): face identifier
	nFaces   int
}

// Build constructs the arrangement. Vertical input lines are rejected by
// rotating responsibility to the caller (the V_Pr pipeline pre-rotates its
// input); they are skipped with their crossings intact.
func Build(lines []Line, box geom.BBox) *Arrangement {
	ar := &Arrangement{Lines: lines, Box: box}

	xsSet := map[float64]struct{}{box.MinX: {}, box.MaxX: {}}
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			p, ok := lines[i].Intersect(lines[j])
			if !ok || !box.Contains(p) {
				continue
			}
			ar.vertices = append(ar.vertices, p)
			xsSet[p.X] = struct{}{}
		}
		if lines[i].B == 0 && lines[i].A != 0 {
			// Vertical line: acts as a slab boundary.
			xsSet[lines[i].C/lines[i].A] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	ar.xs = xs

	nonVertical := make([]int, 0, len(lines))
	for i, l := range lines {
		if l.B != 0 {
			nonVertical = append(nonVertical, i)
		}
	}

	nSlabs := len(xs) - 1
	ar.slabs = make([][]int, nSlabs)
	ar.faceID = make([][]int, nSlabs)
	for s := 0; s < nSlabs; s++ {
		mid := xs[s] + (xs[s+1]-xs[s])/2
		order := append([]int(nil), nonVertical...)
		sort.Slice(order, func(a, b int) bool {
			ya, _ := lines[order[a]].YAtX(mid)
			yb, _ := lines[order[b]].YAtX(mid)
			return ya < yb
		})
		ar.slabs[s] = order
		ar.faceID[s] = make([]int, len(order)+1)
	}

	// Merge trapezoids across slab boundaries with union–find: gap g of
	// slab s and gap h of slab s+1 belong to the same face when their
	// open y-intervals at the shared boundary overlap.
	total := 0
	offsets := make([]int, nSlabs)
	for s := 0; s < nSlabs; s++ {
		offsets[s] = total
		total += len(ar.faceID[s])
	}
	uf := newUnionFind(total)
	verticalX := map[float64]struct{}{}
	for _, l := range lines {
		if l.B == 0 && l.A != 0 {
			verticalX[l.C/l.A] = struct{}{}
		}
	}
	for s := 0; s+1 < nSlabs; s++ {
		x := xs[s+1]
		if _, blocked := verticalX[x]; blocked {
			continue // a vertical line walls off the whole boundary
		}
		ya := gapBounds(lines, ar.slabs[s], x)
		yb := gapBounds(lines, ar.slabs[s+1], x)
		// Two-pointer sweep over the gap interval lists.
		a, b := 0, 0
		for a < len(ya) && b < len(yb) {
			lo := math.Max(ya[a][0], yb[b][0])
			hi := math.Min(ya[a][1], yb[b][1])
			if hi-lo > 1e-12 {
				uf.union(offsets[s]+a, offsets[s+1]+b)
			}
			if ya[a][1] < yb[b][1] {
				a++
			} else {
				b++
			}
		}
	}
	ids := map[int]int{}
	for s := 0; s < nSlabs; s++ {
		for g := range ar.faceID[s] {
			root := uf.find(offsets[s] + g)
			id, ok := ids[root]
			if !ok {
				id = len(ids)
				ids[root] = id
			}
			ar.faceID[s][g] = id
		}
	}
	ar.nFaces = len(ids)
	return ar
}

// gapBounds returns the closed y-intervals of the gaps of a slab at
// vertical line x, ordered bottom to top.
func gapBounds(lines []Line, order []int, x float64) [][2]float64 {
	ys := make([]float64, 0, len(order))
	for _, li := range order {
		if y, ok := lines[li].YAtX(x); ok {
			ys = append(ys, y)
		}
	}
	sort.Float64s(ys)
	out := make([][2]float64, 0, len(ys)+1)
	lo := math.Inf(-1)
	for _, y := range ys {
		out = append(out, [2]float64{lo, y})
		lo = y
	}
	out = append(out, [2]float64{lo, math.Inf(1)})
	return out
}

// VertexCount returns the number of line crossings inside the box.
func (ar *Arrangement) VertexCount() int { return len(ar.vertices) }

// Faces returns the number of distinct arrangement faces intersecting the
// box.
func (ar *Arrangement) Faces() int { return ar.nFaces }

// Slabs returns the number of vertical slabs.
func (ar *Arrangement) Slabs() int { return len(ar.slabs) }

// Locate returns the face identifier containing q, and ok=false outside
// the box. Runs in O(log V + log L).
func (ar *Arrangement) Locate(q geom.Point) (int, bool) {
	if !ar.Box.Contains(q) || len(ar.slabs) == 0 {
		return 0, false
	}
	s := sort.SearchFloat64s(ar.xs, q.X) - 1
	if s < 0 {
		s = 0
	}
	if s >= len(ar.slabs) {
		s = len(ar.slabs) - 1
	}
	order := ar.slabs[s]
	lo, hi := 0, len(order)
	for lo < hi {
		mid := (lo + hi) / 2
		y, _ := ar.Lines[order[mid]].YAtX(q.X)
		if y < q.Y {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return ar.faceID[s][lo], true
}

// FaceRepresentatives returns one interior point per face (keyed by face
// identifier). Faces clipped to slivers may use near-boundary points.
func (ar *Arrangement) FaceRepresentatives() map[int]geom.Point {
	reps := make(map[int]geom.Point, ar.nFaces)
	for s := range ar.slabs {
		xlo, xhi := ar.xs[s], ar.xs[s+1]
		mid := xlo + (xhi-xlo)/2
		order := ar.slabs[s]
		ys := make([]float64, 0, len(order))
		for _, li := range order {
			if y, ok := ar.Lines[li].YAtX(mid); ok {
				ys = append(ys, y)
			}
		}
		for g := 0; g < len(ys)+1; g++ {
			id := ar.faceID[s][g]
			if _, ok := reps[id]; ok {
				continue
			}
			var y float64
			switch {
			case len(ys) == 0:
				y = ar.Box.Center().Y
			case g == 0:
				y = ys[0] - 1
			case g == len(ys):
				y = ys[len(ys)-1] + 1
			default:
				y = ys[g-1] + (ys[g]-ys[g-1])/2
			}
			reps[id] = geom.Pt(mid, y)
		}
	}
	return reps
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
