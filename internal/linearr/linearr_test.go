package linearr

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/geom"
)

var box = geom.BBox{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10}

func TestLineBasics(t *testing.T) {
	l := LineThrough(geom.Pt(0, 0), geom.Pt(2, 2)) // y = x
	y, ok := l.YAtX(3)
	if !ok || math.Abs(y-3) > 1e-12 {
		t.Fatalf("YAtX: %v %v", y, ok)
	}
	m := LineThrough(geom.Pt(0, 2), geom.Pt(2, 0)) // y = 2 - x
	p, ok := l.Intersect(m)
	if !ok || !p.Eq(geom.Pt(1, 1), 1e-12) {
		t.Fatalf("intersect: %v %v", p, ok)
	}
	if _, ok := l.Intersect(LineThrough(geom.Pt(0, 1), geom.Pt(2, 3))); ok {
		t.Fatal("parallel lines must not intersect")
	}
}

func TestBisector(t *testing.T) {
	p, q := geom.Pt(1, 2), geom.Pt(5, -2)
	b := Bisector(p, q)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		x := geom.Pt(r.Float64()*10-5, r.Float64()*10-5)
		side := b.Side(x)
		dp, dq := x.Dist(p), x.Dist(q)
		if math.Abs(dp-dq) < 1e-9 {
			continue
		}
		// All points on one side are closer to one endpoint consistently.
		if (dp < dq) != (side < 0) && (dp < dq) != (side > 0) {
			t.Fatal("bisector sides inconsistent")
		}
	}
	// The midpoint is on the line.
	mid := p.Lerp(q, 0.5)
	if b.Side(mid) != 0 {
		t.Fatalf("midpoint not on bisector")
	}
}

func TestArrangementOneLine(t *testing.T) {
	ar := Build([]Line{LineThrough(geom.Pt(0, 0), geom.Pt(1, 1))}, box)
	if ar.Faces() != 2 {
		t.Fatalf("one line: %d faces", ar.Faces())
	}
	if ar.VertexCount() != 0 {
		t.Fatal("one line has no vertices")
	}
	above, _ := ar.Locate(geom.Pt(0, 5))
	below, _ := ar.Locate(geom.Pt(0, -5))
	if above == below {
		t.Fatal("points on opposite sides must be in different faces")
	}
}

func TestArrangementGeneralPositionCounts(t *testing.T) {
	// L lines in general position: C(L,2) vertices and 1 + L + C(L,2)
	// faces (all crossings inside the box).
	r := rand.New(rand.NewSource(2))
	for _, L := range []int{2, 3, 5, 8} {
		lines := make([]Line, L)
		for i := range lines {
			// Lines through the origin-ish region with random slopes: all
			// crossings near the center, inside the box.
			ang := r.Float64() * math.Pi
			c := geom.Pt(r.Float64()*2-1, r.Float64()*2-1)
			lines[i] = LineThrough(c, c.Add(geom.Dir(ang)))
		}
		ar := Build(lines, box)
		// Count crossings inside the box by brute force; nearly parallel
		// pairs can cross outside.
		wantV := 0
		for i := 0; i < L; i++ {
			for j := i + 1; j < L; j++ {
				if p, ok := lines[i].Intersect(lines[j]); ok && box.Contains(p) {
					wantV++
				}
			}
		}
		if ar.VertexCount() != wantV {
			t.Fatalf("L=%d: %d vertices want %d", L, ar.VertexCount(), wantV)
		}
		// Incremental argument: every line crosses the box, so
		// F = 1 + L + V_inside.
		wantF := 1 + L + wantV
		if ar.Faces() != wantF {
			t.Fatalf("L=%d: %d faces want %d", L, ar.Faces(), wantF)
		}
	}
}

func TestLocateConsistentWithSides(t *testing.T) {
	// Two points are in the same face iff they are on the same side of
	// every line.
	r := rand.New(rand.NewSource(3))
	lines := make([]Line, 6)
	for i := range lines {
		a := geom.Pt(r.Float64()*16-8, r.Float64()*16-8)
		b := geom.Pt(r.Float64()*16-8, r.Float64()*16-8)
		lines[i] = LineThrough(a, b)
	}
	ar := Build(lines, box)
	pts := make([]geom.Point, 60)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*18-9, r.Float64()*18-9)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			fi, ok1 := ar.Locate(pts[i])
			fj, ok2 := ar.Locate(pts[j])
			if !ok1 || !ok2 {
				continue
			}
			same := true
			onLine := false
			for _, l := range lines {
				si, sj := l.Side(pts[i]), l.Side(pts[j])
				if si == 0 || sj == 0 {
					onLine = true
					break
				}
				if si != sj {
					same = false
				}
			}
			if onLine {
				continue
			}
			if same != (fi == fj) {
				t.Fatalf("locate disagrees with side vector: %v %v same=%v faces %d %d",
					pts[i], pts[j], same, fi, fj)
			}
		}
	}
}

func TestFaceRepresentatives(t *testing.T) {
	lines := []Line{
		LineThrough(geom.Pt(0, 0), geom.Pt(1, 0)), // y = 0
		LineThrough(geom.Pt(0, 0), geom.Pt(0, 1)), // x = 0 (vertical)
	}
	ar := Build(lines, box)
	reps := ar.FaceRepresentatives()
	if len(reps) != ar.Faces() {
		t.Fatalf("%d representatives for %d faces", len(reps), ar.Faces())
	}
	for id, rep := range reps {
		got, ok := ar.Locate(rep)
		if !ok {
			continue // representatives may sit slightly outside the box
		}
		if got != id {
			t.Fatalf("representative of face %d locates to %d", id, got)
		}
	}
}

func TestVerticalLineHandling(t *testing.T) {
	// A vertical line splits the box into two faces via slab boundaries.
	vert := Line{A: 1, B: 0, C: 0} // x = 0
	ar := Build([]Line{vert}, box)
	l, _ := ar.Locate(geom.Pt(-5, 0))
	r, _ := ar.Locate(geom.Pt(5, 0))
	if l == r {
		t.Fatal("vertical line must separate the plane")
	}
}
