package envelope

import (
	"math"
	"math/rand"
	"testing"
)

func linear(id int, lo, hi, a, b float64) Func {
	return Func{ID: id, Lo: lo, Hi: hi, Eval: func(t float64) float64 { return a*t + b }}
}

func TestLowerTwoLines(t *testing.T) {
	// y = t and y = 1 - t cross at t = 0.5 on [0, 1].
	fs := []Func{
		linear(0, 0, 1, 1, 0),
		linear(1, 0, 1, -1, 1),
	}
	env := Lower(fs, Options{})
	if len(env) != 2 {
		t.Fatalf("want 2 pieces, got %d: %+v", len(env), env)
	}
	if env[0].ID != 0 || env[1].ID != 1 {
		t.Fatalf("wrong winners: %+v", env)
	}
	if math.Abs(env[0].Hi-0.5) > 1e-9 {
		t.Fatalf("breakpoint at %v, want 0.5", env[0].Hi)
	}
}

func TestLowerWithGap(t *testing.T) {
	fs := []Func{
		linear(0, 0, 1, 0, 5),
		linear(1, 2, 3, 0, 3),
	}
	env := Lower(fs, Options{})
	if len(env) != 2 {
		t.Fatalf("want 2 pieces, got %+v", env)
	}
	if env[0].Hi != 1 || env[1].Lo != 2 {
		t.Fatalf("gap not preserved: %+v", env)
	}
}

func TestLowerPartialDomination(t *testing.T) {
	// A constant low function dominates inside its domain only.
	fs := []Func{
		linear(0, 0, 10, 0, 2),
		linear(1, 4, 6, 0, 1),
	}
	env := Lower(fs, Options{})
	if len(env) != 3 {
		t.Fatalf("want 3 pieces, got %+v", env)
	}
	if env[0].ID != 0 || env[1].ID != 1 || env[2].ID != 0 {
		t.Fatalf("winners wrong: %+v", env)
	}
}

func TestLowerEmpty(t *testing.T) {
	if env := Lower(nil, Options{}); env != nil {
		t.Fatalf("empty input should give empty envelope, got %+v", env)
	}
	// Degenerate domain.
	fs := []Func{linear(0, 3, 3, 1, 0)}
	if env := Lower(fs, Options{}); len(env) != 0 {
		t.Fatalf("degenerate domain: %+v", env)
	}
}

func TestUpperIsNegatedLower(t *testing.T) {
	fs := []Func{
		linear(0, 0, 1, 1, 0),
		linear(1, 0, 1, -1, 1),
	}
	env := Upper(fs, Options{})
	if len(env) != 2 || env[0].ID != 1 || env[1].ID != 0 {
		t.Fatalf("upper envelope wrong: %+v", env)
	}
}

// The envelope of n random parabolas must (a) lower-bound every function at
// probe points and (b) be attained by the reported winner.
func TestLowerEnvelopeIsPointwiseMin(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(8)
		fs := make([]Func, n)
		for i := range fs {
			a := r.Float64()*4 - 2
			b := r.Float64()*4 - 2
			c := r.Float64() * 3
			i := i
			fs[i] = Func{ID: i, Lo: -1, Hi: 1, Eval: func(t float64) float64 {
				return a*(t-b)*(t-b) + c
			}}
		}
		env := Lower(fs, Options{})
		for _, pc := range env {
			for k := 0; k < 5; k++ {
				x := pc.Lo + (pc.Hi-pc.Lo)*(float64(k)+0.5)/5
				winnerVal := math.Inf(1)
				for _, f := range fs {
					if f.ID == pc.ID {
						winnerVal = f.Eval(x)
					}
				}
				for _, f := range fs {
					if x < f.Lo || x > f.Hi {
						continue
					}
					if v := f.Eval(x); v < winnerVal-1e-7 {
						t.Fatalf("trial %d: function %d beats winner %d at %v (%v < %v)",
							trial, f.ID, pc.ID, x, v, winnerVal)
					}
				}
			}
		}
	}
}

// Pairwise-linear envelope has at most 2n-1 pieces (Davenport–Schinzel
// λ_1(n) = n for lines, and pieces of an envelope of n segments ≤ 2n-1...
// here full-domain lines: ≤ n pieces).
func TestLineEnvelopeComplexity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(15)
		fs := make([]Func, n)
		for i := range fs {
			a := r.Float64()*10 - 5
			b := r.Float64()*10 - 5
			fs[i] = linear(i, -10, 10, a, b)
		}
		env := Lower(fs, Options{})
		if len(env) > n {
			t.Fatalf("envelope of %d full-domain lines has %d pieces", n, len(env))
		}
	}
}

func TestBreakpoints(t *testing.T) {
	fs := []Func{
		linear(0, 0, 1, 1, 0),
		linear(1, 0, 1, -1, 1),
		linear(2, 2, 3, 0, 0),
	}
	env := Lower(fs, Options{})
	bps := Breakpoints(env)
	// Interior breakpoint at 0.5, plus gap boundaries 1 and 2.
	if len(bps) != 3 {
		t.Fatalf("breakpoints: %v", bps)
	}
}

func BenchmarkLowerEnvelope32(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	fs := make([]Func, 32)
	for i := range fs {
		a := r.Float64()*4 - 2
		c := r.Float64() * 3
		fs[i] = Func{ID: i, Lo: -1, Hi: 1, Eval: func(t float64) float64 { return a*t*t + c }}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Lower(fs, Options{})
	}
}
