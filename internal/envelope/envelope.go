// Package envelope computes lower envelopes of partial univariate
// functions. It is the engine behind Lemma 2.2 of the paper: the curve γ_i
// is the lower envelope, in polar coordinates around the disk center c_i,
// of the curves γ_ij for j ≠ i. The same machinery serves any family of
// continuous partial functions whose pairwise crossing count is small
// (Davenport–Schinzel setting).
//
// The algorithm is the classical candidate-breakpoint sweep: collect all
// domain endpoints and all pairwise-crossing roots (found numerically by
// sign bracketing and bisection), then within each elementary interval pick
// the minimal function at the midpoint. With s-intersecting pairs the
// envelope has O(λ_s(n)) pieces; the sweep costs O(n² · grid) which is fine
// at the problem sizes the cubic-size diagrams admit anyway.
package envelope

import (
	"math"
	"sort"

	"pnn/internal/geom"
)

// Func is a partial real function on the closed interval [Lo, Hi].
// Eval must be continuous on the interval. ID identifies the function in
// the output envelope (for γ_i construction, the index j of γ_ij).
type Func struct {
	ID     int
	Lo, Hi float64
	Eval   func(t float64) float64
}

// Piece is a maximal interval of the envelope on which one function is the
// pointwise minimum.
type Piece struct {
	ID     int     // which function attains the minimum
	Lo, Hi float64 // interval
}

// Options tune the numeric search. The zero value is replaced by defaults.
type Options struct {
	// GridPerPair is the number of samples used to bracket crossings of a
	// pair of functions over their common domain. Default 48.
	GridPerPair int
	// RootTol is the bisection tolerance for crossing parameters.
	// Default 1e-12.
	RootTol float64
	// MergeSep merges breakpoints closer than this. Default 1e-9.
	MergeSep float64
}

func (o Options) withDefaults() Options {
	if o.GridPerPair == 0 {
		o.GridPerPair = 48
	}
	if o.RootTol == 0 {
		o.RootTol = 1e-12
	}
	if o.MergeSep == 0 {
		o.MergeSep = 1e-9
	}
	return o
}

// Lower computes the lower envelope of fs over the union of their domains.
// Intervals not covered by any function do not appear in the output.
// Pieces are returned in increasing order of Lo; adjacent pieces with the
// same winner are merged.
func Lower(fs []Func, opt Options) []Piece {
	opt = opt.withDefaults()
	if len(fs) == 0 {
		return nil
	}

	// Candidate breakpoints: all endpoints plus pairwise crossings.
	cands := make([]float64, 0, 4*len(fs))
	for _, f := range fs {
		if f.Hi <= f.Lo {
			continue
		}
		cands = append(cands, f.Lo, f.Hi)
	}
	for i := 0; i < len(fs); i++ {
		for j := i + 1; j < len(fs); j++ {
			lo := math.Max(fs[i].Lo, fs[j].Lo)
			hi := math.Min(fs[i].Hi, fs[j].Hi)
			if hi <= lo {
				continue
			}
			fi, fj := fs[i].Eval, fs[j].Eval
			diff := func(t float64) float64 { return fi(t) - fj(t) }
			roots := geom.BracketRoots(diff, lo, hi, opt.GridPerPair, nil, opt.RootTol, opt.MergeSep)
			cands = append(cands, roots...)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Float64s(cands)
	// Deduplicate near-coincident candidates.
	uniq := cands[:1]
	for _, c := range cands[1:] {
		if c-uniq[len(uniq)-1] > opt.MergeSep {
			uniq = append(uniq, c)
		}
	}
	cands = uniq

	var pieces []Piece
	for k := 0; k+1 < len(cands); k++ {
		lo, hi := cands[k], cands[k+1]
		mid := lo + (hi-lo)/2
		best := -1
		bestV := math.Inf(1)
		for idx, f := range fs {
			if mid < f.Lo || mid > f.Hi {
				continue
			}
			if v := f.Eval(mid); v < bestV {
				bestV = v
				best = idx
			}
		}
		if best < 0 {
			continue // gap: no function defined here
		}
		id := fs[best].ID
		if n := len(pieces); n > 0 && pieces[n-1].ID == id && pieces[n-1].Hi == lo {
			pieces[n-1].Hi = hi
		} else {
			pieces = append(pieces, Piece{ID: id, Lo: lo, Hi: hi})
		}
	}
	return pieces
}

// Upper computes the upper envelope of fs (pointwise maximum) by negating.
func Upper(fs []Func, opt Options) []Piece {
	neg := make([]Func, len(fs))
	for i, f := range fs {
		eval := f.Eval
		neg[i] = Func{ID: f.ID, Lo: f.Lo, Hi: f.Hi, Eval: func(t float64) float64 { return -eval(t) }}
	}
	return Lower(neg, opt)
}

// Breakpoints returns the interior breakpoints of an envelope: boundaries
// between consecutive pieces (including boundaries of gaps).
func Breakpoints(pieces []Piece) []float64 {
	var bps []float64
	for k := 0; k < len(pieces); k++ {
		if k > 0 {
			bps = append(bps, pieces[k].Lo)
			if pieces[k-1].Hi != pieces[k].Lo {
				bps = append(bps, pieces[k-1].Hi)
			}
		}
	}
	return bps
}
