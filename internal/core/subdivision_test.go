package core

import (
	"math"
	"pnn/internal/conic"
	"testing"

	"pnn/internal/geom"
)

var clipBox = geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}

func TestClipSegToBox(t *testing.T) {
	// Fully inside.
	s, ok := clipSegToBox(geom.Seg(geom.Pt(1, 1), geom.Pt(9, 9)), clipBox)
	if !ok || !s.A.Eq(geom.Pt(1, 1), 1e-12) || !s.B.Eq(geom.Pt(9, 9), 1e-12) {
		t.Fatalf("inside segment altered: %+v %v", s, ok)
	}
	// Crossing the box.
	s, ok = clipSegToBox(geom.Seg(geom.Pt(-5, 5), geom.Pt(15, 5)), clipBox)
	if !ok || math.Abs(s.A.X) > 1e-12 || math.Abs(s.B.X-10) > 1e-12 {
		t.Fatalf("crossing clip: %+v %v", s, ok)
	}
	// Fully outside.
	if _, ok = clipSegToBox(geom.Seg(geom.Pt(-5, -5), geom.Pt(-1, -1)), clipBox); ok {
		t.Fatal("outside segment should vanish")
	}
	// Cutting across a corner region.
	s, ok = clipSegToBox(geom.Seg(geom.Pt(-1, 8), geom.Pt(3, 12)), clipBox)
	if !ok {
		t.Fatal("corner-crossing segment should survive")
	}
	if s.A.X < -1e-9 || s.B.Y > 10+1e-9 {
		t.Fatalf("corner clip out of bounds: %+v", s)
	}
	// A segment touching the box only at a corner point is degenerate and
	// correctly rejected (zero-length clips contribute no wall).
	if _, ok = clipSegToBox(geom.Seg(geom.Pt(-1, 9), geom.Pt(2, 12)), clipBox); ok {
		t.Fatal("corner-grazing segment should be rejected")
	}
}

func TestBuildSubdivisionEmptyWalls(t *testing.T) {
	calls := 0
	eval := func(q geom.Point) []int { calls++; return []int{7} }
	sub := BuildSubdivision(nil, clipBox, eval)
	if sub.Faces() != 1 {
		t.Fatalf("faces %d", sub.Faces())
	}
	got := sub.Query(geom.Pt(5, 5))
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("query %v", got)
	}
}

func TestBuildSubdivisionSingleWall(t *testing.T) {
	// One horizontal wall owned by index 3 splits the box; below it the
	// set is {0}, above it {0, 3} (toggled).
	walls := []Wall{{Owner: 3, Seg: geom.Seg(geom.Pt(-1, 5), geom.Pt(11, 5))}}
	eval := func(q geom.Point) []int {
		if q.Y < 5 {
			return []int{0}
		}
		return []int{0, 3}
	}
	sub := BuildSubdivision(walls, clipBox, eval)
	below := sub.Query(geom.Pt(5, 2))
	above := sub.Query(geom.Pt(5, 8))
	if len(below) != 1 || below[0] != 0 {
		t.Fatalf("below: %v", below)
	}
	if len(above) != 2 || above[1] != 3 {
		t.Fatalf("above: %v", above)
	}
	if !sub.QueryContains(geom.Pt(5, 8), 3) || sub.QueryContains(geom.Pt(5, 2), 3) {
		t.Fatal("QueryContains inconsistent")
	}
}

func TestBuildSubdivisionCrossingWalls(t *testing.T) {
	// Two crossing diagonal walls partition the box into 4 regions, each
	// with a distinct set; the crossing point is a shared endpoint so the
	// slab structure stays consistent.
	mid := geom.Pt(5, 5)
	walls := []Wall{
		{Owner: 1, Seg: geom.Seg(geom.Pt(0, 0), mid)},
		{Owner: 1, Seg: geom.Seg(mid, geom.Pt(10, 10))},
		{Owner: 2, Seg: geom.Seg(geom.Pt(0, 10), mid)},
		{Owner: 2, Seg: geom.Seg(mid, geom.Pt(10, 0))},
	}
	eval := func(q geom.Point) []int {
		var set []int
		if q.Y > q.X {
			set = append(set, 1)
		}
		if q.Y > 10-q.X {
			set = append(set, 2)
		}
		return set
	}
	sub := BuildSubdivision(walls, clipBox, eval)
	cases := []struct {
		q    geom.Point
		want []int
	}{
		{geom.Pt(5, 1), nil},
		{geom.Pt(1, 5), []int{1}},
		{geom.Pt(9, 5), []int{2}},
		{geom.Pt(5, 9), []int{1, 2}},
	}
	for _, c := range cases {
		got := sub.Query(c.q)
		if !sameInts(got, c.want) {
			t.Fatalf("query %v: got %v want %v", c.q, got, c.want)
		}
	}
}

func TestSubdivisionOutOfBoxUsesEval(t *testing.T) {
	evalHits := 0
	eval := func(q geom.Point) []int { evalHits++; return []int{1} }
	sub := BuildSubdivision(
		[]Wall{{Owner: 1, Seg: geom.Seg(geom.Pt(0, 5), geom.Pt(10, 5))}},
		clipBox, eval)
	base := evalHits
	sub.Query(geom.Pt(100, 100))
	if evalHits != base+1 {
		t.Fatal("out-of-box query must call eval")
	}
}

func TestRadiusCapAngle(t *testing.T) {
	b, ok := conic.GammaIJ(geom.Dsk(0, 0, 1), geom.Dsk(10, 0, 2))
	if !ok {
		t.Fatal("branch should exist")
	}
	// With a generous cap the whole half-angle survives; with a tight cap
	// the angle shrinks; with an impossible cap it reports 0.
	full := b.HalfAngle()
	if got := radiusCapAngle(b, 1e9); got < full*0.99 {
		t.Fatalf("generous cap truncated: %v < %v", got, full)
	}
	apexR, _ := b.RAt(0)
	tight := radiusCapAngle(b, apexR*1.2)
	if tight <= 0 || tight >= full {
		t.Fatalf("tight cap angle %v (full %v)", tight, full)
	}
	if got := radiusCapAngle(b, apexR*0.5); got != 0 {
		t.Fatalf("impossible cap should be 0, got %v", got)
	}
}
