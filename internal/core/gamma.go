// Package core implements the paper's primary contribution: the nonzero
// Voronoi diagram V≠0(P) of a set of uncertain points, its combinatorial
// complexity, and the point-location structure of Theorem 2.11.
//
// The continuous case (Section 2.1) works with uncertainty disks. For each
// disk D_i the curve γ_i = {x : δ_i(x) = Δ(x)} is computed as the lower
// envelope, in polar coordinates around c_i, of the hyperbola branches
// γ_ij (Lemma 2.2). The arrangement A(Γ) of the curves γ_1..γ_n is V≠0(P)
// (Corollary 2.4); its vertices are the envelope breakpoints plus the
// pairwise crossings γ_i ∩ γ_j (Theorem 2.5), which this package finds by
// root refinement along the curves.
//
// The discrete case (Section 2.2) is in gammadiscrete.go; the shared
// slab-based subdivision and point location are in subdivision.go.
package core

import (
	"math"

	"pnn/internal/conic"
	"pnn/internal/envelope"
	"pnn/internal/geom"
)

// Arc is a maximal piece of γ_i lying on a single branch γ_ij. The arc is
// the graph, in polar coordinates around c_i, of the branch over the
// absolute-angle interval [Lo, Hi] ⊆ [−π, π].
type Arc struct {
	I, J   int // piece of γ_I realized against Δ_J
	Lo, Hi float64
	Branch conic.Branch
	theta0 float64 // cached axis angle of the branch at focus c_I
}

// Eval returns the distance from c_I to the arc at absolute angle theta.
func (a Arc) Eval(theta float64) float64 {
	r, ok := a.Branch.RAt(conic.AngleDiff(theta, a.theta0))
	if !ok {
		return math.Inf(1)
	}
	return r
}

// Point returns the point of the arc at absolute angle theta, given the
// focus c (the center of disk I).
func (a Arc) Point(c geom.Point, theta float64) geom.Point {
	return c.Add(geom.Dir(theta).Scale(a.Eval(theta)))
}

// Gamma is the curve γ_i: the locus where δ_i equals the lower envelope Δ.
// Arcs are stored in increasing angle order over [−π, π]; the curve may be
// empty (the disk intersects every other disk, so P_i is a nonzero NN of
// every query point).
type Gamma struct {
	I           int
	Arcs        []Arc
	Breakpoints []geom.Point // envelope transition points (vertices of A(Γ) on edges of M)
}

// GammaOptions tune the numeric construction.
type GammaOptions struct {
	// Envelope options; see envelope.Options.
	Env envelope.Options
	// DomainMargin shrinks each γ_ij polar domain to keep evaluations away
	// from the asymptotes. Default 1e-7 radians.
	DomainMargin float64
}

func (o GammaOptions) withDefaults() GammaOptions {
	if o.DomainMargin == 0 {
		o.DomainMargin = 1e-7
	}
	return o
}

// BuildGamma computes γ_i for disks[i] against every other disk. Per
// Lemma 2.2 the result has O(n) arcs and breakpoints and costs
// O(n log n + n²·grid) with the numeric envelope.
func BuildGamma(disks []geom.Disk, i int, opt GammaOptions) Gamma {
	opt = opt.withDefaults()
	ci := disks[i].C

	type branchInfo struct {
		j      int
		branch conic.Branch
		theta0 float64
	}
	branches := make(map[int]branchInfo)

	var funcs []envelope.Func
	for j := range disks {
		if j == i {
			continue
		}
		b, ok := conic.GammaIJ(disks[i], disks[j])
		if !ok {
			continue // intersecting disks: j never excludes i
		}
		theta0, half, eval := b.PolarFunc(opt.DomainMargin)
		if half <= 0 {
			continue
		}
		branches[j] = branchInfo{j: j, branch: b, theta0: theta0}
		lo, hi := theta0-half, theta0+half
		// Split domains that wrap outside [−π, π].
		segs := splitWrapped(lo, hi)
		for _, s := range segs {
			funcs = append(funcs, envelope.Func{ID: j, Lo: s[0], Hi: s[1], Eval: eval})
		}
	}
	if len(funcs) == 0 {
		return Gamma{I: i}
	}

	pieces := envelope.Lower(funcs, opt.Env)
	g := Gamma{I: i}
	for _, pc := range pieces {
		bi := branches[pc.ID]
		g.Arcs = append(g.Arcs, Arc{
			I: i, J: pc.ID,
			Lo: pc.Lo, Hi: pc.Hi,
			Branch: bi.branch,
			theta0: bi.theta0,
		})
	}
	// Breakpoints: boundaries where two consecutive arcs with different
	// winners meet at a finite envelope value, including the wrap junction
	// at ±π. Gaps (the curve escaping to infinity along an asymptote) are
	// not breakpoints.
	n := len(g.Arcs)
	for k := 0; k < n; k++ {
		cur := g.Arcs[k]
		next := g.Arcs[(k+1)%n]
		var meet float64
		switch {
		case k+1 < n && next.Lo-cur.Hi <= 1e-7:
			meet = cur.Hi
		case k+1 == n && (cur.Hi >= math.Pi-1e-7) && (next.Lo <= -math.Pi+1e-7):
			meet = math.Pi // wrap junction
		default:
			continue // gap
		}
		if cur.J == next.J {
			continue // same branch continues (wrap split artifact)
		}
		r := cur.Eval(meet)
		if math.IsInf(r, 0) {
			r = next.Eval(meet)
		}
		if math.IsInf(r, 0) {
			continue
		}
		g.Breakpoints = append(g.Breakpoints, ci.Add(geom.Dir(meet).Scale(r)))
	}
	return g
}

// LogicalArcs returns the number of maximal single-branch pieces of γ_i,
// merging the representation artifact where one branch whose angular
// domain wraps ±π is stored as two arcs.
func (g Gamma) LogicalArcs() int {
	n := len(g.Arcs)
	if n <= 1 {
		return n
	}
	count := n
	first, last := g.Arcs[0], g.Arcs[n-1]
	if first.J == last.J && first.Lo <= -math.Pi+1e-7 && last.Hi >= math.Pi-1e-7 {
		count--
	}
	return count
}

// splitWrapped normalizes the angular interval [lo, hi] (with hi−lo ≤ 2π)
// into subintervals of [−π, π].
func splitWrapped(lo, hi float64) [][2]float64 {
	norm := func(a float64) float64 {
		for a > math.Pi {
			a -= 2 * math.Pi
		}
		for a < -math.Pi {
			a += 2 * math.Pi
		}
		return a
	}
	nlo, nhi := norm(lo), norm(hi)
	if nlo <= nhi {
		return [][2]float64{{nlo, nhi}}
	}
	// Wraps around ±π.
	return [][2]float64{{nlo, math.Pi}, {-math.Pi, nhi}}
}

// Delta returns Δ(q) = min_i (d(q, c_i) + r_i), the lower envelope of the
// maximum distances (Eq. 4 context).
func Delta(disks []geom.Disk, q geom.Point) float64 {
	best := math.Inf(1)
	for _, d := range disks {
		if v := d.MaxDist(q); v < best {
			best = v
		}
	}
	return best
}

// NonzeroSet returns NN≠0(q) by direct evaluation of Lemma 2.1:
// {i : δ_i(q) < Δ_j(q) ∀ j ≠ i}, in O(n) time. It is the brute-force
// oracle every data structure in this repository is validated against.
// Note the exclusion of j = i: it only matters for degenerate
// (zero-radius) regions, where δ_i = Δ_i.
func NonzeroSet(disks []geom.Disk, q geom.Point) []int {
	return NonzeroSetInto(disks, q, nil)
}

// NonzeroSetInto is NonzeroSet appending into dst (reused from its
// start) — the caller-buffer variant for allocation-flat query loops.
func NonzeroSetInto(disks []geom.Disk, q geom.Point, dst []int) []int {
	min1, min2, argmin := twoSmallest(len(disks), func(j int) float64 { return disks[j].MaxDist(q) })
	dst = dst[:0]
	for i, d := range disks {
		bound := min1
		if i == argmin {
			bound = min2
		}
		if d.MinDist(q) < bound {
			dst = append(dst, i)
		}
	}
	return dst
}

// twoSmallest returns the smallest and second-smallest of f(0..n-1) and the
// argmin. With n == 1 the second value is +Inf.
func twoSmallest(n int, f func(int) float64) (min1, min2 float64, argmin int) {
	min1, min2 = math.Inf(1), math.Inf(1)
	argmin = -1
	for j := 0; j < n; j++ {
		v := f(j)
		switch {
		case v < min1:
			min2 = min1
			min1 = v
			argmin = j
		case v < min2:
			min2 = v
		}
	}
	return min1, min2, argmin
}

// Vertex is a vertex of the arrangement A(Γ) = V≠0(P).
type Vertex struct {
	P geom.Point
	// Kind distinguishes envelope breakpoints (δ_i = Δ_j = Δ_k) from curve
	// crossings (δ_i = δ_j = Δ(x)).
	Kind VertexKind
	I, J int // the two indices involved (for breakpoints, I is the curve, J the winning branch before the break)
}

// VertexKind labels the two vertex types of A(Γ).
type VertexKind uint8

// Vertex kinds.
const (
	Breakpoint VertexKind = iota // transition between arcs of one γ_i
	Crossing                     // intersection of two curves γ_i, γ_j
)

// CrossGammas returns the intersection points of γ_i and γ_j (i = gi.I,
// j = gj.I). On γ_i the identity δ_i = Δ holds, so crossings are exactly
// the roots of δ_j − δ_i along γ_i, found by bracketed bisection on each
// arc. Per the proof of Theorem 2.5 each pair crosses O(n) times; per arc
// the crossing count is O(1), so a constant grid per arc suffices.
func CrossGammas(disks []geom.Disk, gi, gj Gamma, grid int) []geom.Point {
	if grid <= 0 {
		grid = 32
	}
	ci := disks[gi.I].C
	ri := disks[gi.I].R
	dj := disks[gj.I]

	// The crossing function δ_j − δ_i is continuous along the whole curve
	// γ_i, including across breakpoints, so sign changes are bracketed over
	// the global sample sequence. A sign change between two samples of the
	// same arc is refined by bisection; one straddling an arc junction is a
	// vertex coinciding with a breakpoint (a degeneracy the lower-bound
	// constructions of Theorems 2.7/2.10 realize exactly) and is reported
	// at the junction point.
	type sample struct {
		arc   int
		theta float64
		f     float64
		ok    bool
	}
	fAt := func(arc Arc, theta float64) (float64, geom.Point, bool) {
		r := arc.Eval(theta)
		if math.IsInf(r, 0) || math.IsNaN(r) {
			return 0, geom.Point{}, false
		}
		x := ci.Add(geom.Dir(theta).Scale(r))
		return dj.MinDist(x) - (r - ri), x, true
	}
	var samples []sample
	for ai, arc := range gi.Arcs {
		span := arc.Hi - arc.Lo
		if span <= 0 {
			continue
		}
		margin := math.Min(1e-9, span/1000)
		for k := 0; k <= grid; k++ {
			th := arc.Lo + margin + (span-2*margin)*float64(k)/float64(grid)
			f, _, ok := fAt(arc, th)
			samples = append(samples, sample{arc: ai, theta: th, f: f, ok: ok})
		}
	}
	var out []geom.Point
	for s := 1; s < len(samples); s++ {
		a, b := samples[s-1], samples[s]
		if !a.ok || !b.ok {
			continue
		}
		if a.f == 0 {
			if _, x, ok := fAt(gi.Arcs[a.arc], a.theta); ok {
				out = append(out, x)
			}
			continue
		}
		if (a.f > 0) == (b.f > 0) {
			continue
		}
		if a.arc == b.arc {
			arc := gi.Arcs[a.arc]
			root := geom.Bisect(func(th float64) float64 {
				f, _, ok := fAt(arc, th)
				if !ok {
					return math.NaN()
				}
				return f
			}, a.theta, b.theta, 1e-13)
			if _, x, ok := fAt(arc, root); ok {
				out = append(out, x)
			}
			continue
		}
		// Junction-straddling sign change. Only adjacent arcs that meet at
		// a finite point qualify; a gap (both samples near asymptotes)
		// cannot bracket a root because δ_j − δ_i stays bounded away from
		// zero at infinity on each side separately.
		if b.arc == a.arc+1 && gi.Arcs[b.arc].Lo-gi.Arcs[a.arc].Hi <= 1e-7 {
			if _, x, ok := fAt(gi.Arcs[b.arc], gi.Arcs[b.arc].Lo); ok {
				out = append(out, x)
			}
		}
	}
	return dedupePoints(out, 1e-7)
}

func dedupePoints(pts []geom.Point, tol float64) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		dup := false
		for _, q := range out {
			if p.Dist2(q) <= tol*tol {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}
