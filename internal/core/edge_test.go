package core

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/geom"
)

func TestSingleDiskDiagram(t *testing.T) {
	disks := []geom.Disk{geom.Dsk(5, 5, 2)}
	d := BuildDiagram(disks, DiagramOptions{})
	if d.VertexCount() != 0 {
		t.Fatalf("single disk: %d vertices", d.VertexCount())
	}
	for _, q := range []geom.Point{{X: 0, Y: 0}, {X: 100, Y: -50}} {
		got := d.Query(q)
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("single disk query at %v: %v", q, got)
		}
	}
}

func TestNestedDisksDiagram(t *testing.T) {
	// D_1 strictly inside D_0: they intersect, so neither excludes the
	// other; a third far disk is excluded near them.
	disks := []geom.Disk{
		geom.Dsk(0, 0, 10),
		geom.Dsk(1, 0, 2),
		geom.Dsk(100, 0, 1),
	}
	got := NonzeroSet(disks, geom.Pt(0, 0))
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("nested disks at center: %v", got)
	}
	// Near the far disk all three can matter (D_0 is huge).
	got = NonzeroSet(disks, geom.Pt(100, 0))
	found2 := false
	for _, i := range got {
		if i == 2 {
			found2 = true
		}
	}
	if !found2 {
		t.Fatalf("far disk must be its own nonzero NN: %v", got)
	}
}

func TestIdenticalDisks(t *testing.T) {
	// Exactly coincident disks never exclude each other.
	disks := []geom.Disk{geom.Dsk(3, 3, 2), geom.Dsk(3, 3, 2), geom.Dsk(50, 50, 2)}
	got := NonzeroSet(disks, geom.Pt(3, 3))
	if len(got) != 2 {
		t.Fatalf("coincident disks: %v", got)
	}
	d := BuildDiagram(disks, DiagramOptions{SkipSubdivision: true})
	for _, v := range d.Vertices {
		if !d.CheckVertex(v, 1e-5) {
			t.Fatalf("vertex check failed: %+v", v)
		}
	}
}

func TestCollinearCentersDiagram(t *testing.T) {
	// Collinear configuration (degenerate for many CG algorithms): the
	// subdivision must still answer consistently with the oracle.
	disks := []geom.Disk{
		geom.Dsk(0, 0, 1), geom.Dsk(10, 0, 1.5), geom.Dsk(20, 0, 1), geom.Dsk(30, 0, 2),
	}
	d := BuildDiagram(disks, DiagramOptions{})
	r := rand.New(rand.NewSource(1))
	mismatch := 0
	for probe := 0; probe < 300; probe++ {
		q := geom.Pt(r.Float64()*40-5, r.Float64()*30-15)
		got := d.Query(q)
		want := NonzeroSet(disks, q)
		if !sameInts(got, want) {
			delta := Delta(disks, q)
			for _, i := range diffInts(got, want) {
				if math.Abs(disks[i].MinDist(q)-delta) > 1e-2*(1+delta) {
					t.Fatalf("collinear: query %v got %v want %v", q, got, want)
				}
			}
			mismatch++
		}
	}
	if mismatch > 15 {
		t.Fatalf("collinear: %d/300 boundary mismatches", mismatch)
	}
}

func TestQueryContains(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	disks := randomDisks(r, 8, 1, 5)
	d := BuildDiagram(disks, DiagramOptions{})
	for probe := 0; probe < 200; probe++ {
		q := geom.Pt(r.Float64()*100, r.Float64()*100)
		set := d.Query(q)
		inSet := map[int]bool{}
		for _, i := range set {
			inSet[i] = true
		}
		for i := range disks {
			if got := d.Sub.QueryContains(q, i); got != inSet[i] {
				t.Fatalf("QueryContains(%v, %d) = %v, Query gave %v", q, i, got, set)
			}
		}
	}
}

func TestDeltaMonotoneUnderDiskRemoval(t *testing.T) {
	// Removing a disk can only increase Δ(q).
	r := rand.New(rand.NewSource(3))
	disks := randomDisks(r, 10, 1, 4)
	for probe := 0; probe < 100; probe++ {
		q := geom.Pt(r.Float64()*100, r.Float64()*100)
		full := Delta(disks, q)
		partial := Delta(disks[1:], q)
		if partial < full-1e-12 {
			t.Fatalf("Δ decreased after removal: %v -> %v", full, partial)
		}
	}
}

func TestNonzeroSetNeverEmpty(t *testing.T) {
	// Some point always has nonzero probability of being the NN.
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(20)
		disks := randomDisks(r, n, 0.5, 6)
		q := geom.Pt(r.Float64()*200-50, r.Float64()*200-50)
		if len(NonzeroSet(disks, q)) == 0 {
			t.Fatalf("empty NN≠0 for n=%d at %v", n, q)
		}
	}
}

func TestNonzeroSetContainsWeightedNearest(t *testing.T) {
	// The disk realizing Δ(q) always has nonzero probability (its whole
	// region is within Δ of q), except in the degenerate zero-radius tie.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		disks := randomDisks(r, 12, 0.5, 5)
		q := geom.Pt(r.Float64()*100, r.Float64()*100)
		delta := Delta(disks, q)
		arg := -1
		for i, d := range disks {
			if d.MaxDist(q) == delta {
				arg = i
			}
		}
		got := NonzeroSet(disks, q)
		found := false
		for _, i := range got {
			if i == arg {
				found = true
			}
		}
		if !found {
			t.Fatalf("argmin disk %d missing from %v", arg, got)
		}
	}
}

func TestSubdivisionEmptyWalls(t *testing.T) {
	// All curves empty (all disks mutually intersecting): one face.
	disks := []geom.Disk{geom.Dsk(0, 0, 10), geom.Dsk(1, 0, 10), geom.Dsk(0, 1, 10)}
	d := BuildDiagram(disks, DiagramOptions{})
	got := d.Query(geom.Pt(0, 0))
	if len(got) != 3 {
		t.Fatalf("mutually intersecting disks: %v", got)
	}
	if d.VertexCount() != 0 {
		t.Fatalf("no curves, no vertices: %d", d.VertexCount())
	}
}

func TestDiscreteDiagramSinglePoint(t *testing.T) {
	pts := []DiscretePoint{{Locs: []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}}}
	d := BuildDiscreteDiagram(pts, DiscreteDiagramOptions{})
	got := d.Query(geom.Pt(50, 50))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("single discrete point: %v", got)
	}
}

func TestCrossGridOption(t *testing.T) {
	// The Ω(n²) construction's exact count must be reached even at a
	// coarse crossing grid (each arc carries O(1) crossings per pair).
	disks := LowerBoundQuadraticLocal(10)
	for _, grid := range []int{8, 64} {
		d := BuildDiagram(disks, DiagramOptions{SkipSubdivision: true, CrossGrid: grid})
		if d.CrossingCount() < 72 { // (10−2)(10−1) = 72
			t.Fatalf("grid %d: %d crossings < 72", grid, d.CrossingCount())
		}
	}
}

// LowerBoundQuadraticLocal avoids an import cycle with internal/workload.
func LowerBoundQuadraticLocal(n int) []geom.Disk {
	m := n / 2
	ds := make([]geom.Disk, 2*m)
	for i := 1; i <= 2*m; i++ {
		ds[i-1] = geom.Disk{C: geom.Pt(float64(4*(i-m)-2), 0), R: 1}
	}
	return ds
}
