package core

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/geom"
)

// randomDisjointishDisks places n disks with centers in [0,100]² and radii
// in [rmin, rmax]; overlaps are allowed (the diagram handles them).
func randomDisks(r *rand.Rand, n int, rmin, rmax float64) []geom.Disk {
	ds := make([]geom.Disk, n)
	for i := range ds {
		ds[i] = geom.Disk{
			C: geom.Pt(r.Float64()*100, r.Float64()*100),
			R: rmin + r.Float64()*(rmax-rmin),
		}
	}
	return ds
}

func TestNonzeroSetTwoDisks(t *testing.T) {
	disks := []geom.Disk{geom.Dsk(0, 0, 1), geom.Dsk(10, 0, 1)}
	// Query at the left disk's center: Δ = 1, δ_0 = 0 < 1, δ_1 = 9 > 1.
	got := NonzeroSet(disks, geom.Pt(0, 0))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("NN≠0 at left center: %v", got)
	}
	// Query in the middle: both are possible NNs.
	got = NonzeroSet(disks, geom.Pt(5, 0))
	if len(got) != 2 {
		t.Fatalf("NN≠0 at midpoint: %v", got)
	}
}

func TestGammaOnCurveIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		disks := randomDisks(r, 6, 1, 4)
		for i := range disks {
			g := BuildGamma(disks, i, GammaOptions{})
			for _, arc := range g.Arcs {
				for k := 1; k < 8; k++ {
					th := arc.Lo + (arc.Hi-arc.Lo)*float64(k)/8
					rr := arc.Eval(th)
					if math.IsInf(rr, 0) || rr > 1e4 {
						continue
					}
					x := arc.Point(disks[i].C, th)
					deltaI := disks[i].MinDist(x)
					delta := Delta(disks, x)
					if math.Abs(deltaI-delta) > 1e-6*(1+delta) {
						t.Fatalf("trial %d curve %d: δ_i=%v Δ=%v at %v (arc j=%d)",
							trial, i, deltaI, delta, x, arc.J)
					}
				}
			}
		}
	}
}

func TestGammaBreakpointBound(t *testing.T) {
	// Lemma 2.2: γ_i has at most 2n breakpoints.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		n := 8 + r.Intn(8)
		disks := randomDisks(r, n, 0.5, 3)
		for i := range disks {
			g := BuildGamma(disks, i, GammaOptions{})
			if len(g.Breakpoints) > 2*n {
				t.Fatalf("γ_%d has %d breakpoints for n=%d (bound 2n)",
					i, len(g.Breakpoints), n)
			}
		}
	}
}

func TestGammaEmptyWhenDisksOverlap(t *testing.T) {
	// Two deeply overlapping disks: neither curve exists, and both points
	// are nonzero NNs of every query.
	disks := []geom.Disk{geom.Dsk(0, 0, 5), geom.Dsk(1, 0, 5)}
	for i := range disks {
		g := BuildGamma(disks, i, GammaOptions{})
		if len(g.Arcs) != 0 {
			t.Fatalf("γ_%d should be empty", i)
		}
	}
	got := NonzeroSet(disks, geom.Pt(50, 50))
	if len(got) != 2 {
		t.Fatalf("both should be nonzero NNs far away: %v", got)
	}
}

func TestTwoDisksNoVertices(t *testing.T) {
	disks := []geom.Disk{geom.Dsk(0, 0, 1), geom.Dsk(10, 0, 2)}
	d := BuildDiagram(disks, DiagramOptions{SkipSubdivision: true})
	if d.VertexCount() != 0 {
		t.Fatalf("two disks yield no arrangement vertices, got %d", d.VertexCount())
	}
	for _, g := range d.Gammas {
		if g.LogicalArcs() != 1 {
			t.Fatalf("each curve should be a single branch, got %d arcs", g.LogicalArcs())
		}
		if len(g.Breakpoints) != 0 {
			t.Fatalf("no breakpoints expected, got %d", len(g.Breakpoints))
		}
	}
}

func TestDiagramVerticesSatisfyTangency(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		disks := randomDisks(r, 7, 1, 5)
		d := BuildDiagram(disks, DiagramOptions{SkipSubdivision: true})
		for _, v := range d.Vertices {
			if !d.CheckVertex(v, 1e-5) {
				t.Fatalf("trial %d: vertex %+v fails tangency check", trial, v)
			}
		}
	}
}

func TestDiagramVertexKinds(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	disks := randomDisks(r, 8, 1, 4)
	d := BuildDiagram(disks, DiagramOptions{SkipSubdivision: true})
	if d.BreakpointCount()+d.CrossingCount() != d.VertexCount() {
		t.Fatal("vertex kind counts must partition the vertex set")
	}
}

func TestSubdivisionAgainstBrute(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		disks := randomDisks(r, 8, 1, 6)
		d := BuildDiagram(disks, DiagramOptions{})
		if d.Sub == nil {
			t.Fatal("subdivision missing")
		}
		mismatch := 0
		for probe := 0; probe < 500; probe++ {
			q := geom.Pt(r.Float64()*140-20, r.Float64()*140-20)
			got := d.Query(q)
			want := NonzeroSet(disks, q)
			if !sameInts(got, want) {
				// Allow mismatches only for indices at the decision
				// boundary (δ_i ≈ Δ) — the flattening tolerance.
				delta := Delta(disks, q)
				for _, i := range diffInts(got, want) {
					margin := math.Abs(disks[i].MinDist(q) - delta)
					if margin > 1e-2*(1+delta) {
						t.Fatalf("trial %d: query %v: got %v want %v (index %d margin %v)",
							trial, q, got, want, i, margin)
					}
				}
				mismatch++
			}
		}
		if mismatch > 25 {
			t.Fatalf("too many boundary mismatches: %d/500", mismatch)
		}
	}
}

func TestSubdivisionOutOfBoxFallback(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	disks := randomDisks(r, 5, 1, 3)
	d := BuildDiagram(disks, DiagramOptions{})
	q := geom.Pt(1e6, 1e6)
	got := d.Query(q)
	want := NonzeroSet(disks, q)
	if !sameInts(got, want) {
		t.Fatalf("out-of-box query: got %v want %v", got, want)
	}
}

func TestQueryWithoutSubdivision(t *testing.T) {
	disks := []geom.Disk{geom.Dsk(0, 0, 1), geom.Dsk(10, 0, 1)}
	d := BuildDiagram(disks, DiagramOptions{SkipSubdivision: true})
	got := d.Query(geom.Pt(0, 0))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("fallback query: %v", got)
	}
}

func TestCrossGammasSymmetricPair(t *testing.T) {
	// Three equal disks at triangle corners: by symmetry each pair of
	// curves crosses, and every crossing satisfies δ_i = δ_j = Δ.
	disks := []geom.Disk{geom.Dsk(0, 0, 1), geom.Dsk(20, 0, 1), geom.Dsk(10, 17, 1)}
	d := BuildDiagram(disks, DiagramOptions{SkipSubdivision: true})
	if d.CrossingCount() == 0 {
		t.Fatal("triangle configuration must produce curve crossings")
	}
	for _, v := range d.Vertices {
		if v.Kind != Crossing {
			continue
		}
		di := disks[v.I].MinDist(v.P)
		dj := disks[v.J].MinDist(v.P)
		if math.Abs(di-dj) > 1e-6 {
			t.Fatalf("crossing %v: δ_i=%v δ_j=%v", v.P, di, dj)
		}
	}
}

func TestSubdivisionMemorySharing(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	disks := randomDisks(r, 8, 1, 5)
	d := BuildDiagram(disks, DiagramOptions{})
	faces := d.Sub.Faces()
	nodes := d.Sub.MemoryNodes()
	// Without persistence each face would store up to n elements:
	// nodes ≈ faces × |set|. With persistence, nodes grow roughly like
	// faces (one toggle per face) plus slab seeds.
	if faces > 100 && nodes > faces*12 {
		t.Fatalf("persistent sharing ineffective: %d nodes for %d faces", nodes, faces)
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffInts returns the symmetric difference of two sorted int slices.
func diffInts(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
