package core

import (
	"math"

	"pnn/internal/conic"
	"pnn/internal/geom"
)

// Diagram is the nonzero Voronoi diagram V≠0(P) for uncertainty disks
// (Section 2.1): the curves Γ = {γ_1..γ_n}, the vertices of the
// arrangement A(Γ), and (optionally) the slab subdivision answering
// NN≠0 queries per Theorem 2.11.
type Diagram struct {
	Disks    []geom.Disk
	Gammas   []Gamma
	Vertices []Vertex
	Sub      *Subdivision
	Box      geom.BBox
}

// DiagramOptions tune construction.
type DiagramOptions struct {
	Gamma GammaOptions
	// CrossGrid is the per-arc sample count used to bracket γ_i ∩ γ_j
	// crossings. Default 32.
	CrossGrid int
	// FlattenPerArc is the number of polyline samples per arc when
	// building the subdivision. Default 24.
	FlattenPerArc int
	// SkipSubdivision computes curves and vertices only (complexity
	// counting mode, used by the Θ(n³) experiments where the subdivision
	// itself is not needed).
	SkipSubdivision bool
	// PadFactor grows the working box beyond the disk bounding box by this
	// multiple of its diagonal. Default 1.5.
	PadFactor float64
}

func (o DiagramOptions) withDefaults() DiagramOptions {
	if o.CrossGrid == 0 {
		o.CrossGrid = 32
	}
	if o.FlattenPerArc == 0 {
		o.FlattenPerArc = 24
	}
	if o.PadFactor == 0 {
		o.PadFactor = 1.5
	}
	return o
}

// BuildDiagram computes V≠0(P) for the given uncertainty disks.
func BuildDiagram(disks []geom.Disk, opt DiagramOptions) *Diagram {
	opt = opt.withDefaults()
	d := &Diagram{Disks: disks}

	bb := geom.EmptyBBox()
	for _, dk := range disks {
		bb = bb.Union(dk.BBox())
	}
	diag := math.Hypot(bb.Width(), bb.Height())
	if diag == 0 {
		diag = 1
	}
	d.Box = bb.Pad(opt.PadFactor * diag)

	// Γ: one envelope per disk (Lemma 2.2).
	d.Gammas = make([]Gamma, len(disks))
	for i := range disks {
		d.Gammas[i] = BuildGamma(disks, i, opt.Gamma)
	}

	// Vertices: breakpoints plus pairwise crossings (Theorem 2.5).
	// anchors[i] holds, per curve, the absolute angles of vertices lying on
	// γ_i; the flattened polylines are anchored there so that true vertices
	// are polyline vertices.
	anchors := make([][]float64, len(disks))
	for i, g := range d.Gammas {
		for _, bp := range g.Breakpoints {
			d.Vertices = append(d.Vertices, Vertex{P: bp, Kind: Breakpoint, I: i})
			anchors[i] = append(anchors[i], bp.Sub(disks[i].C).Angle())
		}
	}
	for i := 0; i < len(disks); i++ {
		for j := i + 1; j < len(disks); j++ {
			if len(d.Gammas[i].Arcs) == 0 || len(d.Gammas[j].Arcs) == 0 {
				continue
			}
			pts := CrossGammas(disks, d.Gammas[i], d.Gammas[j], opt.CrossGrid)
			for _, p := range pts {
				d.Vertices = append(d.Vertices, Vertex{P: p, Kind: Crossing, I: i, J: j})
				anchors[i] = append(anchors[i], p.Sub(disks[i].C).Angle())
				anchors[j] = append(anchors[j], p.Sub(disks[j].C).Angle())
			}
		}
	}

	if opt.SkipSubdivision {
		return d
	}

	var walls []Wall
	for i, g := range d.Gammas {
		for _, arc := range g.Arcs {
			walls = append(walls, flattenArc(disks[i].C, arc, anchors[i], d.Box, opt.FlattenPerArc)...)
		}
	}
	eval := func(q geom.Point) []int { return NonzeroSet(disks, q) }
	d.Sub = BuildSubdivision(walls, d.Box, eval)
	return d
}

// flattenArc converts one arc of γ_i into polyline walls. Sampling is
// uniform in angle within the portion of the arc whose radius stays inside
// the working box, with the exact vertex angles in anchors inserted so the
// polyline passes through every arrangement vertex on the arc.
func flattenArc(c geom.Point, arc Arc, anchors []float64, box geom.BBox, perArc int) []Wall {
	// Restrict to radii that can intersect the padded box.
	maxR := box.MaxDistToPoint(c)
	lo, hi := arc.Lo, arc.Hi
	phiCap := radiusCapAngle(arc.Branch, maxR)
	if phiCap > 0 {
		tl := conic.AngleDiff(lo, arc.theta0)
		th := conic.AngleDiff(hi, arc.theta0)
		if tl < -phiCap {
			lo += (-phiCap - tl)
		}
		if th > phiCap {
			hi -= (th - phiCap)
		}
	}
	if hi <= lo {
		return nil
	}
	thetas := make([]float64, 0, perArc+4)
	for k := 0; k <= perArc; k++ {
		thetas = append(thetas, lo+(hi-lo)*float64(k)/float64(perArc))
	}
	for _, a := range anchors {
		if a > lo && a < hi {
			thetas = append(thetas, a)
		}
	}
	sortFloat64s(thetas)
	var walls []Wall
	var prev geom.Point
	havePrev := false
	for _, th := range thetas {
		r := arc.Eval(th)
		if math.IsInf(r, 0) || r > maxR*1.5 {
			havePrev = false
			continue
		}
		p := c.Add(geom.Dir(th).Scale(r))
		if havePrev && !p.Eq(prev, 1e-12) {
			walls = append(walls, Wall{Owner: arc.I, Seg: geom.Seg(prev, p)})
		}
		prev = p
		havePrev = true
	}
	return walls
}

// radiusCapAngle returns the |φ| beyond which the branch's polar radius
// exceeds maxR (0 when the whole branch stays within maxR is impossible —
// callers treat 0 as "no cap").
func radiusCapAngle(b conic.Branch, maxR float64) float64 {
	c := b.C()
	if c == 0 || maxR <= 0 {
		return 0
	}
	// r(φ) = (c²−a²)/(c·cosφ − a) ≤ maxR  ⇔  cosφ ≥ (a + (c²−a²)/maxR)/c
	v := (b.A + (c*c-b.A*b.A)/maxR) / c
	if v >= 1 {
		return 0
	}
	if v <= -1 {
		return math.Pi
	}
	return math.Acos(v)
}

func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// VertexCount returns the number of arrangement vertices — the quantity all
// complexity theorems of Section 2 bound.
func (d *Diagram) VertexCount() int { return len(d.Vertices) }

// BreakpointCount returns the number of envelope breakpoints across all
// curves (each is a vertex of A(Γ) lying on an edge of the weighted Voronoi
// diagram M).
func (d *Diagram) BreakpointCount() int {
	n := 0
	for _, v := range d.Vertices {
		if v.Kind == Breakpoint {
			n++
		}
	}
	return n
}

// CrossingCount returns the number of pairwise curve crossings.
func (d *Diagram) CrossingCount() int { return len(d.Vertices) - d.BreakpointCount() }

// Query answers NN≠0(q) via the subdivision (Theorem 2.11), falling back
// to direct evaluation when the subdivision was skipped.
func (d *Diagram) Query(q geom.Point) []int {
	if d.Sub == nil {
		return NonzeroSet(d.Disks, q)
	}
	return d.Sub.Query(q)
}

// QueryInto is Query appending into dst (reused from its start).
func (d *Diagram) QueryInto(q geom.Point, dst []int) []int {
	if d.Sub == nil {
		return NonzeroSetInto(d.Disks, q, dst)
	}
	return d.Sub.QueryInto(q, dst)
}

// CheckVertex verifies the defining tangency conditions of an arrangement
// vertex within tolerance tol: the witness disk of radius Δ(v) centered at
// v touches the required uncertainty regions. Used by tests.
func (d *Diagram) CheckVertex(v Vertex, tol float64) bool {
	delta := Delta(d.Disks, v.P)
	switch v.Kind {
	case Breakpoint:
		// δ_I(v) = Δ(v).
		return math.Abs(d.Disks[v.I].MinDist(v.P)-delta) <= tol
	case Crossing:
		return math.Abs(d.Disks[v.I].MinDist(v.P)-delta) <= tol &&
			math.Abs(d.Disks[v.J].MinDist(v.P)-delta) <= tol
	}
	return false
}
