package core

import (
	"math"
	"sort"

	"pnn/internal/geom"
	"pnn/internal/persist"
)

// Wall is a piece of some curve γ_owner used as a face boundary in the slab
// subdivision. Continuous diagrams supply flattened arc polylines anchored
// at the exact arrangement vertices; discrete diagrams supply exact
// segments.
type Wall struct {
	Owner int
	Seg   geom.Segment
}

// Subdivision is a vertical-slab point-location structure over the
// arrangement of the curves γ_i. Within each slab the walls crossing it are
// ordered by height; the region between two consecutive walls is a face of
// V≠0(P), and its NN≠0 set is stored as a persistent set derived from the
// face below by a single toggle (the symmetric-difference-1 property the
// paper exploits with [DSST89]).
type Subdivision struct {
	box   geom.BBox
	xs    []float64
	slabs []slab
	// eval answers a query by direct Lemma 2.1 evaluation; used for points
	// outside the covered box and as the per-slab bottom-face seed.
	eval func(q geom.Point) []int
	// contains reports membership of one index (for toggling validation).
	faces int
}

type slab struct {
	segs []Wall
	sets []persist.Set // len(segs)+1, bottom to top
}

// BuildSubdivision constructs the slab structure from walls clipped to box.
// eval must return the NN≠0 set at an arbitrary point (used at one probe
// point per slab and for out-of-box queries).
func BuildSubdivision(walls []Wall, box geom.BBox, eval func(q geom.Point) []int) *Subdivision {
	s := &Subdivision{box: box, eval: eval}

	// Clip walls to the box and collect slab boundaries.
	var clipped []Wall
	xsSet := map[float64]struct{}{box.MinX: {}, box.MaxX: {}}
	for _, w := range walls {
		seg, ok := clipSegToBox(w.Seg, box)
		if !ok || seg.A.X == seg.B.X {
			continue // vertical or outside: contributes no slab-spanning wall
		}
		if seg.A.X > seg.B.X {
			seg.A, seg.B = seg.B, seg.A
		}
		clipped = append(clipped, Wall{Owner: w.Owner, Seg: seg})
		xsSet[seg.A.X] = struct{}{}
		xsSet[seg.B.X] = struct{}{}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	s.xs = xs
	if len(xs) < 2 {
		s.xs = []float64{box.MinX, box.MaxX}
		s.slabs = []slab{{sets: []persist.Set{persist.FromSlice(eval(box.Center()))}}}
		s.faces = 1
		return s
	}

	// Distribute walls to slabs with an event sweep.
	type event struct {
		x    float64
		add  bool
		wall int
	}
	events := make([]event, 0, 2*len(clipped))
	for wi, w := range clipped {
		events = append(events, event{w.Seg.A.X, true, wi})
		events = append(events, event{w.Seg.B.X, false, wi})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].x != events[j].x {
			return events[i].x < events[j].x
		}
		return !events[i].add && events[j].add // removals first
	})

	active := map[int]struct{}{}
	ei := 0
	s.slabs = make([]slab, len(xs)-1)
	for si := 0; si+1 < len(xs); si++ {
		xlo, xhi := xs[si], xs[si+1]
		for ei < len(events) && events[ei].x <= xlo {
			if events[ei].add {
				active[events[ei].wall] = struct{}{}
			} else {
				delete(active, events[ei].wall)
			}
			ei++
		}
		mid := xlo + (xhi-xlo)/2
		sl := &s.slabs[si]
		for wi := range active {
			w := clipped[wi]
			if w.Seg.A.X <= xlo && w.Seg.B.X >= xhi {
				sl.segs = append(sl.segs, w)
			}
		}
		sort.Slice(sl.segs, func(a, b int) bool {
			ya, _ := sl.segs[a].Seg.YAtX(mid)
			yb, _ := sl.segs[b].Seg.YAtX(mid)
			return ya < yb
		})
		// Seed the bottom face just below the lowest wall (or anywhere in
		// an empty slab), then toggle upward.
		var yProbe float64
		if len(sl.segs) > 0 {
			y0, _ := sl.segs[0].Seg.YAtX(mid)
			yProbe = y0 - 1 - math.Abs(y0)*1e-6
		} else {
			yProbe = box.Center().Y
		}
		bottom := persist.FromSlice(eval(geom.Pt(mid, yProbe)))
		sl.sets = make([]persist.Set, len(sl.segs)+1)
		sl.sets[0] = bottom
		cur := bottom
		for k, w := range sl.segs {
			cur, _ = cur.Toggle(w.Owner)
			sl.sets[k+1] = cur
		}
		s.faces += len(sl.sets)
	}
	return s
}

// Faces returns the total number of slab faces (trapezoids) stored.
func (s *Subdivision) Faces() int { return s.faces }

// Slabs returns the number of vertical slabs.
func (s *Subdivision) Slabs() int { return len(s.slabs) }

// ExplicitSetSize returns Σ over faces of |NN≠0 set| — the storage an
// implementation without [DSST89] persistence would need. Compared with
// MemoryNodes by the persistence ablation.
func (s *Subdivision) ExplicitSetSize() int {
	total := 0
	for _, sl := range s.slabs {
		for _, set := range sl.sets {
			total += set.Len()
		}
	}
	return total
}

// MemoryNodes returns the number of distinct persistent-set nodes stored
// across all faces — the quantity the persistence ablation reports.
func (s *Subdivision) MemoryNodes() int {
	var all []persist.Set
	for _, sl := range s.slabs {
		all = append(all, sl.sets...)
	}
	return persist.NodeCount(all)
}

// Query returns NN≠0(q) in O(log μ + t) time for in-box queries, falling
// back to the direct O(n) evaluation outside the box.
func (s *Subdivision) Query(q geom.Point) []int {
	set, ok := s.querySet(q)
	if !ok {
		return s.eval(q)
	}
	return set.Elements(nil)
}

// QueryInto is Query appending into dst (reused from its start). The
// result never aliases the persistent face sets.
func (s *Subdivision) QueryInto(q geom.Point, dst []int) []int {
	dst = dst[:0]
	set, ok := s.querySet(q)
	if !ok {
		return append(dst, s.eval(q)...)
	}
	return set.Elements(dst)
}

// QueryContains reports whether index i belongs to NN≠0(q), without
// materializing the set.
func (s *Subdivision) QueryContains(q geom.Point, i int) bool {
	set, ok := s.querySet(q)
	if !ok {
		for _, j := range s.eval(q) {
			if j == i {
				return true
			}
		}
		return false
	}
	return set.Contains(i)
}

func (s *Subdivision) querySet(q geom.Point) (persist.Set, bool) {
	if !s.box.Contains(q) || len(s.slabs) == 0 {
		return persist.Set{}, false
	}
	si := sort.SearchFloat64s(s.xs, q.X) - 1
	if si < 0 {
		si = 0
	}
	if si >= len(s.slabs) {
		si = len(s.slabs) - 1
	}
	sl := &s.slabs[si]
	// Binary search: number of walls strictly below q.
	lo, hi := 0, len(sl.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		y, _ := sl.segs[mid].Seg.YAtX(q.X)
		if y < q.Y {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return sl.sets[lo], true
}

func clipSegToBox(seg geom.Segment, box geom.BBox) (geom.Segment, bool) {
	// Liang–Barsky clipping.
	x0, y0 := seg.A.X, seg.A.Y
	dx, dy := seg.B.X-seg.A.X, seg.B.Y-seg.A.Y
	t0, t1 := 0.0, 1.0
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		r := q / p
		if p < 0 {
			if r > t1 {
				return false
			}
			if r > t0 {
				t0 = r
			}
		} else {
			if r < t0 {
				return false
			}
			if r < t1 {
				t1 = r
			}
		}
		return true
	}
	if !clip(-dx, x0-box.MinX) || !clip(dx, box.MaxX-x0) ||
		!clip(-dy, y0-box.MinY) || !clip(dy, box.MaxY-y0) {
		return geom.Segment{}, false
	}
	if t0 >= t1 {
		return geom.Segment{}, false
	}
	return geom.Seg(seg.At(t0), seg.At(t1)), true
}
