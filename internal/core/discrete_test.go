package core

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/geom"
)

// randomDiscretePoints places n uncertain points, each with k locations in
// a cluster of the given radius around a random center in [0,100]².
func randomDiscretePoints(r *rand.Rand, n, k int, radius float64) []DiscretePoint {
	pts := make([]DiscretePoint, n)
	for i := range pts {
		cx, cy := r.Float64()*100, r.Float64()*100
		locs := make([]geom.Point, k)
		for t := range locs {
			ang := r.Float64() * 2 * math.Pi
			rr := r.Float64() * radius
			locs[t] = geom.Pt(cx+rr*math.Cos(ang), cy+rr*math.Sin(ang))
		}
		pts[i] = DiscretePoint{Locs: locs}
	}
	return pts
}

func TestNonzeroSetDiscreteBasics(t *testing.T) {
	pts := []DiscretePoint{
		{Locs: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}},
		{Locs: []geom.Point{{X: 10, Y: 0}, {X: 11, Y: 0}}},
	}
	// At the left cluster both locations of P_0 are within Δ = max dist to
	// P_0's farthest location; P_1 is far outside.
	got := NonzeroSetDiscrete(pts, geom.Pt(0, 0))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("NN≠0 at left cluster: %v", got)
	}
	got = NonzeroSetDiscrete(pts, geom.Pt(5.5, 0))
	if len(got) != 2 {
		t.Fatalf("NN≠0 at midpoint: %v", got)
	}
}

func TestDiscreteCurveOnBoundaryIdentity(t *testing.T) {
	// Sampled points of γ_i must satisfy δ_i = Δ.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		pts := randomDiscretePoints(r, 5, 3, 3)
		d := BuildDiscreteDiagram(pts, DiscreteDiagramOptions{SkipSubdivision: true})
		for i, segs := range d.Curves {
			for _, s := range segs {
				for _, tt := range []float64{0.25, 0.5, 0.75} {
					x := s.At(tt)
					if !d.Box.Contains(x) {
						continue
					}
					deltaI := pts[i].MinDist(x)
					delta := DeltaDiscrete(pts, x)
					if math.Abs(deltaI-delta) > 1e-7*(1+delta) {
						t.Fatalf("trial %d: γ_%d point %v: δ_i=%v Δ=%v",
							trial, i, x, deltaI, delta)
					}
				}
			}
		}
	}
}

func TestDiscreteDiagramVerticesSatisfyEqualities(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5; trial++ {
		pts := randomDiscretePoints(r, 5, 3, 3)
		d := BuildDiscreteDiagram(pts, DiscreteDiagramOptions{SkipSubdivision: true})
		for _, v := range d.Vertices {
			if !d.CheckVertex(v, 1e-6) {
				t.Fatalf("trial %d: vertex %+v fails equalities", trial, v)
			}
		}
	}
}

func TestDiscreteSubdivisionAgainstBrute(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 3; trial++ {
		pts := randomDiscretePoints(r, 6, 3, 4)
		d := BuildDiscreteDiagram(pts, DiscreteDiagramOptions{})
		mismatch := 0
		for probe := 0; probe < 400; probe++ {
			q := geom.Pt(r.Float64()*120-10, r.Float64()*120-10)
			got := d.Query(q)
			want := NonzeroSetDiscrete(pts, q)
			if !sameInts(got, want) {
				delta := DeltaDiscrete(pts, q)
				for _, i := range diffInts(got, want) {
					margin := math.Abs(pts[i].MinDist(q) - delta)
					if margin > 1e-6*(1+delta) {
						t.Fatalf("trial %d query %v: got %v want %v (i=%d margin %v)",
							trial, q, got, want, i, margin)
					}
				}
				mismatch++
			}
		}
		if mismatch > 8 {
			t.Fatalf("too many boundary mismatches: %d/400", mismatch)
		}
	}
}

func TestDiscreteSingletonLocationsMatchCertainVoronoi(t *testing.T) {
	// k = 1 degenerates to certain points: NN≠0(q) is exactly the set of
	// nearest points (singleton away from bisectors).
	pts := []DiscretePoint{
		{Locs: []geom.Point{{X: 0, Y: 0}}},
		{Locs: []geom.Point{{X: 10, Y: 0}}},
		{Locs: []geom.Point{{X: 5, Y: 8}}},
	}
	got := NonzeroSetDiscrete(pts, geom.Pt(1, 1))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("certain-point NN: %v", got)
	}
	got = NonzeroSetDiscrete(pts, geom.Pt(9, 1))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("certain-point NN: %v", got)
	}
}

func TestDiscreteDiagramEmptyCurveWhenCoLocated(t *testing.T) {
	// Two uncertain points with interleaved supports: neither can exclude
	// the other anywhere, so both curves are empty and both points are
	// nonzero NNs everywhere.
	pts := []DiscretePoint{
		{Locs: []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}},
		{Locs: []geom.Point{{X: 5, Y: 0}, {X: 15, Y: 0}}},
	}
	d := BuildDiscreteDiagram(pts, DiscreteDiagramOptions{SkipSubdivision: true})
	for _, q := range []geom.Point{{X: -5, Y: 3}, {X: 7, Y: -2}, {X: 30, Y: 1}} {
		got := NonzeroSetDiscrete(pts, q)
		if len(got) != 2 {
			t.Fatalf("both points should be nonzero NNs at %v: %v", q, got)
		}
	}
	_ = d // curves may be empty or outside the box; the semantic test above is the contract
}

func TestSegConvexInterval(t *testing.T) {
	sq := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}}
	// Segment crossing the square horizontally.
	lo, hi, ok := segConvexInterval(geom.Seg(geom.Pt(-2, 2), geom.Pt(6, 2)), sq)
	if !ok || math.Abs(lo-0.25) > 1e-12 || math.Abs(hi-0.75) > 1e-12 {
		t.Fatalf("interval [%v, %v] ok=%v", lo, hi, ok)
	}
	// Segment missing the square.
	if _, _, ok := segConvexInterval(geom.Seg(geom.Pt(-2, 5), geom.Pt(6, 7)), sq); ok {
		t.Fatal("segment above the square should miss")
	}
	// Segment inside the square.
	lo, hi, ok = segConvexInterval(geom.Seg(geom.Pt(1, 1), geom.Pt(3, 3)), sq)
	if !ok || lo != 0 || hi != 1 {
		t.Fatalf("inside segment [%v, %v] ok=%v", lo, hi, ok)
	}
}

func TestSubtractConvexCover(t *testing.T) {
	sq := [][]geom.Point{
		nil, // skip slot
		{{X: 1, Y: -1}, {X: 3, Y: -1}, {X: 3, Y: 1}, {X: 1, Y: 1}},
	}
	seg := geom.Seg(geom.Pt(0, 0), geom.Pt(4, 0))
	out := subtractConvexCover(seg, sq, 0)
	if len(out) != 2 {
		t.Fatalf("want 2 pieces, got %v", out)
	}
	if math.Abs(out[0].B.X-1) > 1e-9 || math.Abs(out[1].A.X-3) > 1e-9 {
		t.Fatalf("pieces %v", out)
	}
	// Fully covered.
	big := [][]geom.Point{nil, {{X: -1, Y: -1}, {X: 5, Y: -1}, {X: 5, Y: 1}, {X: -1, Y: 1}}}
	if out := subtractConvexCover(seg, big, 0); len(out) != 0 {
		t.Fatalf("fully covered segment should vanish, got %v", out)
	}
}
