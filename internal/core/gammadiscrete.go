package core

import (
	"math"

	"pnn/internal/geom"
	"pnn/internal/halfplane"
)

// DiscretePoint is an uncertain point with a finite location set (weights
// are irrelevant to V≠0, which depends only on the support).
type DiscretePoint struct {
	Locs []geom.Point
}

// MinDist returns δ_i(q).
func (p DiscretePoint) MinDist(q geom.Point) float64 {
	_, d := geom.NearestPoint(p.Locs, q)
	return d
}

// MaxDist returns Δ_i(q).
func (p DiscretePoint) MaxDist(q geom.Point) float64 {
	_, d := geom.FarthestPoint(p.Locs, q)
	return d
}

// DeltaDiscrete returns Δ(q) = min_i Δ_i(q) over discrete points.
func DeltaDiscrete(pts []DiscretePoint, q geom.Point) float64 {
	best := math.Inf(1)
	for _, p := range pts {
		if v := p.MaxDist(q); v < best {
			best = v
		}
	}
	return best
}

// NonzeroSetDiscrete returns NN≠0(q) for discrete uncertain points by
// direct Lemma 2.1 evaluation in O(nk) time. As in NonzeroSet, the
// comparison excludes j = i so single-location (certain) points behave
// like a standard Voronoi diagram.
func NonzeroSetDiscrete(pts []DiscretePoint, q geom.Point) []int {
	return NonzeroSetDiscreteInto(pts, q, nil)
}

// NonzeroSetDiscreteInto is NonzeroSetDiscrete appending into dst
// (reused from its start).
func NonzeroSetDiscreteInto(pts []DiscretePoint, q geom.Point, dst []int) []int {
	min1, min2, argmin := twoSmallest(len(pts), func(j int) float64 { return pts[j].MaxDist(q) })
	dst = dst[:0]
	for i, p := range pts {
		bound := min1
		if i == argmin {
			bound = min2
		}
		if p.MinDist(q) < bound {
			dst = append(dst, i)
		}
	}
	return dst
}

// DiscreteDiagram is V≠0(P) for discrete uncertain points (Section 2.2).
// Each curve γ_i is the boundary of the union of the convex kill regions
// K_ij = {x : δ_i(x) ≥ Δ_j(x)} (Lemma 2.13), represented exactly as
// segments; the arrangement vertices and subdivision follow Theorem 2.14.
type DiscreteDiagram struct {
	Points   []DiscretePoint
	Curves   [][]geom.Segment // γ_i as exact segments (union boundary)
	Vertices []Vertex
	Sub      *Subdivision
	Box      geom.BBox
}

// DiscreteDiagramOptions tune construction.
type DiscreteDiagramOptions struct {
	// SkipSubdivision computes curves and vertices only.
	SkipSubdivision bool
	// PadFactor grows the working box beyond the location bounding box by
	// this multiple of its diagonal. Default 1.5. Kill regions are clipped
	// to a box grown by 4× that padding so clipping artifacts stay outside
	// the reported region.
	PadFactor float64
}

func (o DiscreteDiagramOptions) withDefaults() DiscreteDiagramOptions {
	if o.PadFactor == 0 {
		o.PadFactor = 1.5
	}
	return o
}

// BuildDiscreteDiagram computes V≠0(P) for discrete uncertain points.
func BuildDiscreteDiagram(pts []DiscretePoint, opt DiscreteDiagramOptions) *DiscreteDiagram {
	opt = opt.withDefaults()
	d := &DiscreteDiagram{Points: pts}

	bb := geom.EmptyBBox()
	for _, p := range pts {
		for _, l := range p.Locs {
			bb = bb.Extend(l)
		}
	}
	diag := math.Hypot(bb.Width(), bb.Height())
	if diag == 0 {
		diag = 1
	}
	d.Box = bb.Pad(opt.PadFactor * diag)
	clipBox := bb.Pad(4 * opt.PadFactor * diag)

	n := len(pts)
	// Kill regions K_ij for all ordered pairs.
	kill := make([][][]geom.Point, n)
	for i := 0; i < n; i++ {
		kill[i] = make([][]geom.Point, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			kill[i][j] = halfplane.KillRegion(pts[i].Locs, pts[j].Locs, clipBox)
		}
	}

	// γ_i = boundary of ∪_j K_ij: keep the parts of each ∂K_ij not strictly
	// inside any other K_il.
	d.Curves = make([][]geom.Segment, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			poly := kill[i][j]
			if len(poly) == 0 {
				continue
			}
			for e := 0; e < len(poly); e++ {
				seg := geom.Seg(poly[e], poly[(e+1)%len(poly)])
				pieces := subtractConvexCover(seg, kill[i], j)
				d.Curves[i] = append(d.Curves[i], pieces...)
			}
		}
	}

	// Vertices: segment endpoints interior to the scene (breakpoints of the
	// union boundary) plus pairwise crossings of γ_i and γ_j segments.
	inner := d.Box
	for i := 0; i < n; i++ {
		var eps []geom.Point
		for _, s := range d.Curves[i] {
			eps = append(eps, s.A, s.B)
		}
		eps = dedupePoints(eps, 1e-9)
		for _, p := range eps {
			if inner.Contains(p) {
				d.Vertices = append(d.Vertices, Vertex{P: p, Kind: Breakpoint, I: i})
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var pts2 []geom.Point
			for _, si := range d.Curves[i] {
				for _, sj := range d.Curves[j] {
					if p, ok := si.Intersect(sj); ok && inner.Contains(p) {
						pts2 = append(pts2, p)
					}
				}
			}
			for _, p := range dedupePoints(pts2, 1e-9) {
				d.Vertices = append(d.Vertices, Vertex{P: p, Kind: Crossing, I: i, J: j})
			}
		}
	}

	if opt.SkipSubdivision {
		return d
	}
	var walls []Wall
	for i, segs := range d.Curves {
		for _, s := range segs {
			walls = append(walls, Wall{Owner: i, Seg: s})
		}
	}
	eval := func(q geom.Point) []int { return NonzeroSetDiscrete(pts, q) }
	d.Sub = BuildSubdivision(walls, d.Box, eval)
	return d
}

// subtractConvexCover returns the sub-segments of seg not strictly inside
// any of the convex polygons in polys (skipping index skip, whose boundary
// seg lies on). Each convex polygon intersects the segment in one
// parameter interval, so this is interval subtraction on [0,1].
func subtractConvexCover(seg geom.Segment, polys [][]geom.Point, skip int) []geom.Segment {
	type iv struct{ lo, hi float64 }
	var cover []iv
	for l, poly := range polys {
		if l == skip || len(poly) == 0 {
			continue
		}
		lo, hi, ok := segConvexInterval(seg, poly)
		if ok && hi-lo > 1e-12 {
			cover = append(cover, iv{lo, hi})
		}
	}
	if len(cover) == 0 {
		return []geom.Segment{seg}
	}
	// Sort and merge.
	for i := 1; i < len(cover); i++ {
		v := cover[i]
		j := i - 1
		for j >= 0 && cover[j].lo > v.lo {
			cover[j+1] = cover[j]
			j--
		}
		cover[j+1] = v
	}
	var out []geom.Segment
	cur := 0.0
	for _, c := range cover {
		if c.lo > cur+1e-12 {
			out = append(out, geom.Seg(seg.At(cur), seg.At(c.lo)))
		}
		if c.hi > cur {
			cur = c.hi
		}
	}
	if cur < 1-1e-12 {
		out = append(out, geom.Seg(seg.At(cur), seg.At(1)))
	}
	return out
}

// segConvexInterval returns the parameter interval [lo, hi] ⊆ [0,1] of the
// part of seg inside the convex polygon (counterclockwise). ok is false
// when the segment misses the polygon.
func segConvexInterval(seg geom.Segment, poly []geom.Point) (float64, float64, bool) {
	lo, hi := 0.0, 1.0
	d := seg.B.Sub(seg.A)
	n := len(poly)
	for k := 0; k < n; k++ {
		p0 := poly[k]
		p1 := poly[(k+1)%n]
		edge := p1.Sub(p0)
		// Inside is to the left of the edge: cross(edge, x - p0) ≥ 0.
		denom := edge.Cross(d)
		num := edge.Cross(seg.A.Sub(p0))
		if denom == 0 {
			if num < 0 {
				return 0, 0, false
			}
			continue
		}
		t := -num / denom
		if denom > 0 {
			if t > lo {
				lo = t
			}
		} else {
			if t < hi {
				hi = t
			}
		}
		if lo >= hi {
			return 0, 0, false
		}
	}
	return lo, hi, true
}

// VertexCount returns the number of arrangement vertices.
func (d *DiscreteDiagram) VertexCount() int { return len(d.Vertices) }

// Query answers NN≠0(q), via the subdivision when built.
func (d *DiscreteDiagram) Query(q geom.Point) []int {
	if d.Sub == nil {
		return NonzeroSetDiscrete(d.Points, q)
	}
	return d.Sub.Query(q)
}

// QueryInto is Query appending into dst (reused from its start).
func (d *DiscreteDiagram) QueryInto(q geom.Point, dst []int) []int {
	if d.Sub == nil {
		return NonzeroSetDiscreteInto(d.Points, q, dst)
	}
	return d.Sub.QueryInto(q, dst)
}

// CheckVertex verifies that an arrangement vertex satisfies its defining
// equalities within tol.
func (d *DiscreteDiagram) CheckVertex(v Vertex, tol float64) bool {
	delta := DeltaDiscrete(d.Points, v.P)
	switch v.Kind {
	case Breakpoint:
		return math.Abs(d.Points[v.I].MinDist(v.P)-delta) <= tol
	case Crossing:
		return math.Abs(d.Points[v.I].MinDist(v.P)-delta) <= tol &&
			math.Abs(d.Points[v.J].MinDist(v.P)-delta) <= tol
	}
	return false
}
