package workload

import (
	"math/rand"
	"testing"

	"pnn/internal/core"
	"pnn/internal/geom"
)

func TestRandomDisks(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ds := RandomDisks(r, 20, 100, 1, 5)
	if len(ds) != 20 {
		t.Fatal("count")
	}
	for _, d := range ds {
		if d.R < 1 || d.R > 5 {
			t.Fatalf("radius out of range: %v", d.R)
		}
		if d.C.X < 0 || d.C.X > 100 || d.C.Y < 0 || d.C.Y > 100 {
			t.Fatalf("center out of range: %v", d.C)
		}
	}
}

func TestDisjointDisks(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ds := DisjointDisks(r, 30, 3)
	for i := range ds {
		if ds[i].R < 1 || ds[i].R > 3 {
			t.Fatalf("radius ratio violated: %v", ds[i].R)
		}
		for j := i + 1; j < len(ds); j++ {
			if ds[i].Intersects(ds[j]) {
				t.Fatalf("disks %d and %d intersect", i, j)
			}
		}
	}
}

func TestRandomDiscrete(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := RandomDiscrete(r, 10, 4, 100, 3, 5)
	if len(pts) != 10 {
		t.Fatal("count")
	}
	for _, p := range pts {
		if p.K() != 4 {
			t.Fatalf("k = %d", p.K())
		}
		if s := p.Spread(); s > 5.0001 {
			t.Fatalf("spread %v exceeds bound", s)
		}
	}
	sup := Supports(pts)
	if len(sup) != 10 || len(sup[0].Locs) != 4 {
		t.Fatal("supports")
	}
}

func TestLowerBoundQuadraticCount(t *testing.T) {
	// The Theorem 2.10 construction must produce at least the guaranteed
	// 2·#pairs vertices (the measured count may exceed it slightly from
	// breakpoints).
	n := 8
	disks := LowerBoundQuadratic(n)
	d := core.BuildDiagram(disks, core.DiagramOptions{SkipSubdivision: true})
	want := LowerBoundQuadraticExpected(n)
	if d.CrossingCount() < want {
		t.Fatalf("Ω(n²) construction: %d crossings < guaranteed %d",
			d.CrossingCount(), want)
	}
}

func TestLowerBoundQuadraticKnownVertices(t *testing.T) {
	// The paper gives closed-form vertex positions: for pairs (i,j) with
	// j−i ≥ 2 and i+j even, v = (2(i+j−2m−1), ±((j−i)²−1)). Verify a few
	// satisfy δ_i = δ_j = Δ_k.
	n := 8
	m := n / 2
	disks := LowerBoundQuadratic(n)
	for _, pair := range [][2]int{{1, 3}, {2, 4}, {1, 5}} {
		i, j := pair[0], pair[1]
		if (i+j)%2 != 0 {
			continue
		}
		v := geom.Pt(float64(2*(i+j-2*m-1)), float64((j-i)*(j-i)-1))
		di := disks[i-1].MinDist(v)
		dj := disks[j-1].MinDist(v)
		k := (i + j) / 2
		dk := disks[k-1].MaxDist(v)
		if ab(di-dj) > 1e-9 || ab(di-dk) > 1e-9 {
			t.Fatalf("paper vertex (%d,%d) at %v: δ_i=%v δ_j=%v Δ_k=%v",
				i, j, v, di, dj, dk)
		}
	}
}

func TestLowerBoundCubicStructure(t *testing.T) {
	disks := LowerBoundCubic(8) // m = 2: 2+2+4 disks
	if len(disks) != 8 {
		t.Fatalf("disk count %d", len(disks))
	}
	// Flanking disks must be disjoint from each other and from the unit
	// disks (touching is excluded by the 3/2 gap).
	mHuge := 4
	for i := 0; i < mHuge; i++ {
		for j := mHuge; j < len(disks); j++ {
			if disks[i].Intersects(disks[j]) {
				t.Fatalf("disks %d, %d intersect", i, j)
			}
		}
	}
}

func TestLowerBoundCubicEqualRadiiStructure(t *testing.T) {
	disks := LowerBoundCubicEqualRadii(9) // m = 3
	if len(disks) != 9 {
		t.Fatalf("disk count %d", len(disks))
	}
	for _, d := range disks {
		if d.R != 1 {
			t.Fatalf("all radii must be 1, got %v", d.R)
		}
	}
}

func TestVPrLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := VPrLowerBound(r, 6)
	for _, p := range pts {
		if p.K() != 2 {
			t.Fatalf("k = %d", p.K())
		}
		if p.Locs[0].Norm() > 1 {
			t.Fatalf("near location outside unit disk: %v", p.Locs[0])
		}
		if p.Locs[1] != geom.Pt(100, 0) {
			t.Fatalf("far location: %v", p.Locs[1])
		}
	}
}

func TestQueryPoints(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	box := geom.BBox{MinX: -1, MinY: 2, MaxX: 3, MaxY: 4}
	qs := QueryPoints(r, 100, box)
	for _, q := range qs {
		if !box.Contains(q) {
			t.Fatalf("query %v outside box", q)
		}
	}
}

func ab(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
