package workload

import (
	"testing"

	"pnn/internal/core"
)

// The explicit constructions must produce at least their guaranteed vertex
// counts (Theorems 2.7 and 2.8). They typically produce more: the guarantee
// covers only the designated triples.
func TestLowerBoundCubicCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("construction sweep skipped in -short mode")
	}
	for _, n := range []int{8, 12} {
		disks := LowerBoundCubic(n)
		d := core.BuildDiagram(disks, core.DiagramOptions{SkipSubdivision: true})
		if got, want := d.CrossingCount(), LowerBoundCubicExpected(n); got < want {
			t.Fatalf("Theorem 2.7 construction n=%d: %d crossings < guaranteed %d", n, got, want)
		}
	}
}

func TestLowerBoundCubicEqualRadiiCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("construction sweep skipped in -short mode")
	}
	for _, n := range []int{9, 12} {
		disks := LowerBoundCubicEqualRadii(n)
		d := core.BuildDiagram(disks, core.DiagramOptions{SkipSubdivision: true})
		if got, want := d.CrossingCount(), LowerBoundCubicEqualRadiiExpected(n); got < want {
			t.Fatalf("Theorem 2.8 construction n=%d: %d crossings < guaranteed %d", n, got, want)
		}
	}
}
