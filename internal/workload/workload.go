// Package workload generates the inputs for every experiment in
// EXPERIMENTS.md: random uncertain-point sets (continuous and discrete),
// disjoint-disk families with bounded radius ratio λ (Theorem 2.10's upper
// bound regime), and the paper's explicit lower-bound constructions
// (Theorems 2.7, 2.8, 2.10 and Lemma 4.1).
package workload

import (
	"math"
	"math/rand"

	"pnn/internal/core"
	"pnn/internal/dist"
	"pnn/internal/geom"
)

// RandomDisks returns n disks with centers uniform in [0, extent]² and
// radii uniform in [rmin, rmax]. Overlaps are allowed.
func RandomDisks(r *rand.Rand, n int, extent, rmin, rmax float64) []geom.Disk {
	ds := make([]geom.Disk, n)
	for i := range ds {
		ds[i] = geom.Disk{
			C: geom.Pt(r.Float64()*extent, r.Float64()*extent),
			R: rmin + r.Float64()*(rmax-rmin),
		}
	}
	return ds
}

// DisjointDisks returns n pairwise-disjoint disks with radius ratio at most
// lambda (radii in [1, lambda]), placed by dart throwing in a box sized so
// placement succeeds quickly.
func DisjointDisks(r *rand.Rand, n int, lambda float64) []geom.Disk {
	if lambda < 1 {
		lambda = 1
	}
	// Expected area heuristic: total disk area × 8 gives fast dart throwing.
	avg := (1 + lambda) / 2
	extent := math.Sqrt(float64(n)*math.Pi*avg*avg*8) + 4*lambda
	var ds []geom.Disk
	for len(ds) < n {
		cand := geom.Disk{
			C: geom.Pt(r.Float64()*extent, r.Float64()*extent),
			R: 1 + r.Float64()*(lambda-1),
		}
		ok := true
		for _, d := range ds {
			if d.C.Dist(cand.C) <= d.R+cand.R {
				ok = false
				break
			}
		}
		if ok {
			ds = append(ds, cand)
		}
	}
	return ds
}

// RandomDiscrete returns n discrete uncertain points, each with k locations
// inside a cluster disk of the given radius; centers are uniform in
// [0, extent]². Weights are Dirichlet-ish: uniform stick-breaking clamped
// so the spread stays below maxSpread (maxSpread ≤ 1 means uniform
// weights).
func RandomDiscrete(r *rand.Rand, n, k int, extent, radius, maxSpread float64) []*dist.Discrete {
	pts := make([]*dist.Discrete, n)
	for i := range pts {
		c := geom.Pt(r.Float64()*extent, r.Float64()*extent)
		locs := make([]geom.Point, k)
		for t := range locs {
			ang := r.Float64() * 2 * math.Pi
			rr := radius * math.Sqrt(r.Float64())
			locs[t] = c.Add(geom.Dir(ang).Scale(rr))
		}
		if maxSpread <= 1 {
			pts[i] = dist.UniformDiscrete(locs)
			continue
		}
		w := make([]float64, k)
		lo := 1.0
		hi := maxSpread
		sum := 0.0
		for t := range w {
			w[t] = lo + r.Float64()*(hi-lo)
			sum += w[t]
		}
		for t := range w {
			w[t] /= sum
		}
		d, err := dist.NewDiscrete(locs, w)
		if err != nil {
			pts[i] = dist.UniformDiscrete(locs)
		} else {
			pts[i] = d
		}
	}
	return pts
}

// Supports extracts the location supports for diagram construction.
func Supports(pts []*dist.Discrete) []core.DiscretePoint {
	out := make([]core.DiscretePoint, len(pts))
	for i, p := range pts {
		out[i] = core.DiscretePoint{Locs: p.Locs}
	}
	return out
}

// LowerBoundCubic builds the Theorem 2.7 configuration: n = 4m disks whose
// nonzero Voronoi diagram has Ω(n³) vertices (2 vertices per triple
// (i, j, k) ∈ [m]×[m]×[2m]). Radii are mixed: two families of huge disks of
// radius R = 8n² flanking 2m unit disks on the y-axis.
func LowerBoundCubic(n int) []geom.Disk {
	m := n / 4
	if m < 1 {
		m = 1
	}
	n = 4 * m
	R := 8 * float64(n) * float64(n)
	omega := 1 / (float64(n) * float64(n))
	var ds []geom.Disk
	for i := 1; i <= m; i++ {
		ds = append(ds, geom.Disk{C: geom.Pt(-R-1.5-float64(i-1)*omega, 0), R: R})
	}
	for j := 1; j <= m; j++ {
		ds = append(ds, geom.Disk{C: geom.Pt(R+1.5+float64(j-1)*omega, 0), R: R})
	}
	for k := 1; k <= 2*m; k++ {
		ds = append(ds, geom.Disk{C: geom.Pt(0, float64(4*(k-m)-2)), R: 1})
	}
	return ds
}

// LowerBoundCubicExpected returns the number of vertices the Theorem 2.7
// construction guarantees: 2·m·m·2m with m = n/4.
func LowerBoundCubicExpected(n int) int {
	m := n / 4
	return 4 * m * m * m
}

// LowerBoundCubicEqualRadii builds the Theorem 2.8 configuration: n = 3m
// unit disks whose diagram has Ω(n³) vertices (1 per triple (i,j,k) ∈ [m]³)
// even though all radii are equal.
func LowerBoundCubicEqualRadii(n int) []geom.Disk {
	m := n / 3
	if m < 1 {
		m = 1
	}
	theta := math.Pi / 2 / float64(m+1)
	omega := theta / (200 * float64(m))
	var ds []geom.Disk
	for i := 1; i <= m; i++ {
		ds = append(ds, geom.Disk{C: geom.Pt(-2-float64(i-1)*omega, 0), R: 1})
	}
	for j := 1; j <= m; j++ {
		ds = append(ds, geom.Disk{C: geom.Pt(2+float64(j-1)*omega, 0), R: 1})
	}
	for k := 1; k <= m; k++ {
		ds = append(ds, geom.Disk{
			C: geom.Pt(2-2*math.Cos(float64(k)*theta), 2*math.Sin(float64(k)*theta)),
			R: 1,
		})
	}
	return ds
}

// LowerBoundCubicEqualRadiiExpected returns m³ with m = n/3.
func LowerBoundCubicEqualRadiiExpected(n int) int {
	m := n / 3
	return m * m * m
}

// LowerBoundQuadratic builds the Theorem 2.10 configuration: n = 2m
// pairwise-disjoint unit disks on a line whose diagram has Ω(n²) vertices
// (2 per pair (i,j) with j − i ≥ 2).
func LowerBoundQuadratic(n int) []geom.Disk {
	m := n / 2
	if m < 1 {
		m = 1
	}
	ds := make([]geom.Disk, 2*m)
	for i := 1; i <= 2*m; i++ {
		ds[i-1] = geom.Disk{C: geom.Pt(float64(4*(i-m)-2), 0), R: 1}
	}
	return ds
}

// LowerBoundQuadraticExpected returns the number of vertices guaranteed by
// Theorem 2.10's construction: 2 per pair (i, j) with j − i ≥ 2.
func LowerBoundQuadraticExpected(n int) int {
	if n < 3 {
		return 0
	}
	return (n - 2) * (n - 1)
}

// VPrLowerBound builds the Lemma 4.1 configuration for the probabilistic
// Voronoi diagram: n uncertain points, each with two locations — one inside
// the unit disk at the origin, one far away at (100, 0) — each with
// probability 1/2. The bisectors of the near locations produce Ω(n⁴) faces
// with pairwise-distinct probability vectors inside the unit disk.
func VPrLowerBound(r *rand.Rand, n int) []*dist.Discrete {
	pts := make([]*dist.Discrete, n)
	far := geom.Pt(100, 0)
	for i := range pts {
		// Near locations in general position inside the unit disk: random
		// points in a small annulus avoid degenerate bisectors.
		ang := r.Float64() * 2 * math.Pi
		rad := 0.3 + 0.6*r.Float64()
		near := geom.Dir(ang).Scale(rad)
		d, _ := dist.NewDiscrete([]geom.Point{near, far}, []float64{0.5, 0.5})
		pts[i] = d
	}
	return pts
}

// QueryPoints returns m query points uniform in the box.
func QueryPoints(r *rand.Rand, m int, box geom.BBox) []geom.Point {
	qs := make([]geom.Point, m)
	for i := range qs {
		qs[i] = geom.Pt(
			box.MinX+r.Float64()*box.Width(),
			box.MinY+r.Float64()*box.Height(),
		)
	}
	return qs
}

// DisksBBox returns the bounding box of a disk family.
func DisksBBox(ds []geom.Disk) geom.BBox {
	bb := geom.EmptyBBox()
	for _, d := range ds {
		bb = bb.Union(d.BBox())
	}
	return bb
}

// DiscreteBBox returns the bounding box of all locations.
func DiscreteBBox(pts []*dist.Discrete) geom.BBox {
	bb := geom.EmptyBBox()
	for _, p := range pts {
		bb = bb.Union(geom.BBoxOf(p.Locs))
	}
	return bb
}
