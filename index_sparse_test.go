package pnn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"pnn/internal/quantify"
)

// engineConfigs enumerates the quantifier configurations the sparse path
// must agree with the dense path on, per set kind. V_Pr is exercised
// separately over a small set — its diagram is Θ(N⁴) (Lemma 4.1), so the
// property-test sets here would blow construction up.
func discreteEngines() map[string][]Option {
	return map[string][]Option{
		"exact":    nil,
		"spiral":   {WithQuantifier(SpiralSearch(0.05))},
		"mc":       {WithQuantifier(MonteCarlo(0.15, 0.1)), WithSeed(3)},
		"mcbudget": {WithQuantifier(MonteCarloBudget(200)), WithSeed(5)},
	}
}

func continuousEngines() map[string][]Option {
	return map[string][]Option{
		"integrate": {WithIntegrationPanels(64)},
		"spiral":    {WithQuantifier(SpiralSearch(0.1)), WithSpiralSamples(40), WithSeed(2)},
		"mcbudget":  {WithQuantifier(MonteCarloBudget(150)), WithSeed(7)},
	}
}

// denseTopK is the pre-sparse-path reference: rank the full vector.
func denseTopK(ix *Index, q Point, k int) []IndexProb {
	return toIndexProbs(quantify.TopK(ix.probs(q), k))
}

// densePositive is the pre-sparse-path reference for PositiveProbabilities.
func densePositive(ix *Index, q Point, eps float64) []IndexProb {
	return toIndexProbs(quantify.Positive(ix.probs(q), eps))
}

// denseThreshold is the reference classification over the full vector,
// with the zero-probability fix applied (π̂ = 0 is never Certain).
func denseThreshold(ix *Index, q Point, tau float64) ThresholdResult {
	pi := ix.probs(q)
	lo := tau
	if ix.twoSided {
		lo = tau + ix.eps
	}
	var res ThresholdResult
	for i, p := range pi {
		switch {
		case p > 0 && p >= lo:
			res.Certain = append(res.Certain, i)
		case ix.eps > 0 && p+ix.eps >= tau:
			res.Possible = append(res.Possible, i)
		}
	}
	return res
}

func sameIP(a, b []IndexProb) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { // bitwise float equality on purpose
			return false
		}
	}
	return true
}

// TestSparseMatchesDenseProperty is the equivalence property of the
// sparse hot path: TopK, Threshold, and PositiveProbabilities answered
// through the engines' sparse reports must be identical — same indices,
// same probabilities (bitwise), same order — to the dense N-length-vector
// path, across seeds, engines, and set kinds.
func TestSparseMatchesDenseProperty(t *testing.T) {
	type setCase struct {
		name    string
		set     UncertainSet
		engines map[string][]Option
	}
	var cases []setCase
	for seed := int64(1); seed <= 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		dset, err := NewDiscreteSet(randomDiscretePoints(r, 25, 3))
		if err != nil {
			t.Fatal(err)
		}
		cset, err := NewContinuousSet(randomDiskPoints(r, 12))
		if err != nil {
			t.Fatal(err)
		}
		vset, err := NewDiscreteSet(randomDiscretePoints(r, 6, 2))
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases,
			setCase{"discrete", dset, discreteEngines()},
			setCase{"continuous", cset, continuousEngines()},
			setCase{"discrete-vpr", vset, map[string][]Option{
				"vpr": {WithQuantifier(VPrDiagram(-10, -10, 110, 110))},
			}})
	}
	taus := []float64{-0.5, 0, 0.02, 0.08, 0.2, 0.5, 1.5}
	for ci, c := range cases {
		r := rand.New(rand.NewSource(int64(100 + ci)))
		for name, opts := range c.engines {
			idx, err := New(c.set, opts...)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, name, err)
			}
			for trial := 0; trial < 15; trial++ {
				q := Pt(r.Float64()*120-10, r.Float64()*120-10)
				for _, k := range []int{0, 1, 3, idx.Len(), idx.Len() + 7} {
					got, err := idx.TopK(q, k)
					if err != nil {
						t.Fatalf("%s/%s TopK: %v", c.name, name, err)
					}
					if want := denseTopK(idx, q, k); !sameIP(got, want) {
						t.Fatalf("%s/%s TopK(%v, %d) = %v, dense %v", c.name, name, q, k, got, want)
					}
				}
				for _, eps := range []float64{0, 0.01, 0.3} {
					got, err := idx.PositiveProbabilities(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					if want := densePositive(idx, q, eps); !sameIP(got, want) {
						t.Fatalf("%s/%s Positive(%v, %g) = %v, dense %v", c.name, name, q, eps, got, want)
					}
				}
				for _, tau := range taus {
					got, err := idx.Threshold(q, tau)
					if err != nil {
						t.Fatal(err)
					}
					want := denseThreshold(idx, q, tau)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%s Threshold(%v, %g) = %+v, dense %+v (eps=%g twoSided=%v)",
							c.name, name, q, tau, got, want, idx.eps, idx.twoSided)
					}
				}
			}
		}
	}
}

// TestThresholdZeroTau is the regression for the tau = 0 bug: Threshold
// must never certify zero-probability points, for any engine. With an
// exact engine the Certain set at tau ≤ 0 is exactly NN≠0-with-positive-π;
// approximate engines may leave the rest Possible, never Certain.
func TestThresholdZeroTau(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	set, err := NewDiscreteSet(randomDiscretePoints(r, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range discreteEngines() {
		idx, err := New(set, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, tau := range []float64{0, -1} {
			for trial := 0; trial < 10; trial++ {
				q := Pt(r.Float64()*100, r.Float64()*100)
				res, err := idx.Threshold(q, tau)
				if err != nil {
					t.Fatal(err)
				}
				pi, _ := idx.Probabilities(q)
				for _, i := range res.Certain {
					if pi[i] <= 0 {
						t.Fatalf("%s: Threshold(%v, %g) certified zero-probability point %d", name, q, tau, i)
					}
				}
				reported := map[int]bool{}
				for _, i := range res.Certain {
					reported[i] = true
				}
				if idx.eps == 0 {
					// Exact-comparison engines: Certain is exactly the
					// positive-probability set and nothing is undecidable.
					if len(res.Possible) != 0 {
						t.Fatalf("%s: Possible = %v at tau=%g", name, res.Possible, tau)
					}
					for i, p := range pi {
						if (p > 0) != reported[i] {
							t.Fatalf("%s: point %d (π̂=%g) certification mismatch at tau=%g", name, i, p, tau)
						}
					}
					continue
				}
				// Approximate engines: every positive-estimate point must at
				// least be Possible (a zero estimate cannot be Certain but
				// may be Possible — its true π may reach ε).
				for _, i := range res.Possible {
					reported[i] = true
				}
				for i, p := range pi {
					if p > 0 && !reported[i] {
						t.Fatalf("%s: point %d has π̂=%g but was not reported at tau=%g", name, i, p, tau)
					}
				}
			}
		}
	}
}

// TestThresholdInvalidTau: NaN and ±Inf taus must fail with
// ErrInvalidParam instead of silently classifying nothing.
func TestThresholdInvalidTau(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	set, err := NewDiscreteSet(randomDiscretePoints(r, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := idx.Threshold(Pt(1, 1), tau); !errors.Is(err, ErrInvalidParam) {
			t.Fatalf("Threshold(tau=%v) err = %v, want ErrInvalidParam", tau, err)
		}
	}
}

// TestTopKEdgeSemantics pins the defined edges — k < 0 errors, k == 0 is
// empty, k > N clamps — identically through the facade and QueryBatchOps.
func TestTopKEdgeSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	set, err := NewDiscreteSet(randomDiscretePoints(r, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	q := Pt(40, 40)

	if _, err := idx.TopK(q, -1); !errors.Is(err, ErrInvalidParam) {
		t.Fatalf("TopK(-1) err = %v, want ErrInvalidParam", err)
	}
	if got, err := idx.TopK(q, 0); err != nil || len(got) != 0 {
		t.Fatalf("TopK(0) = %v, %v; want empty, nil", got, err)
	}
	big, err := idx.TopK(q, idx.Len()+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) > idx.Len() {
		t.Fatalf("TopK clamped to %d entries, want ≤ %d", len(big), idx.Len())
	}
	pos, _ := idx.PositiveProbabilities(q, 0)
	if len(big) != len(pos) {
		t.Fatalf("TopK(N+100) has %d entries, want all %d positive ones", len(big), len(pos))
	}

	// The same three edges through the heterogeneous batch surface.
	res, err := idx.QueryBatchOps(context.Background(), []Request{
		{Q: q, Op: OpTopK, K: -1},
		{Q: q, Op: OpTopK, K: 0},
		{Q: q, Op: OpTopK, K: idx.Len() + 100},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err, ErrInvalidParam) {
		t.Fatalf("batch TopK(-1) err = %v, want ErrInvalidParam", res[0].Err)
	}
	if res[1].Err != nil || len(res[1].Ranked) != 0 {
		t.Fatalf("batch TopK(0) = %v, %v", res[1].Ranked, res[1].Err)
	}
	if res[2].Err != nil || !sameIP(res[2].Ranked, big) {
		t.Fatalf("batch TopK(N+100) = %v, facade %v", res[2].Ranked, big)
	}
}

// TestResultsAreCallerOwned is the slice-aliasing audit: every query
// result of every backend and every set kind must be safe to mutate —
// re-querying afterwards returns the original answer.
func TestResultsAreCallerOwned(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	// Small discrete set: the V_Pr engine below is Θ(N⁴) in locations.
	dset, err := NewDiscreteSet(randomDiscretePoints(r, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	cset, err := NewContinuousSet(randomDiskPoints(r, 8))
	if err != nil {
		t.Fatal(err)
	}
	sqs := make([]SquarePoint, 8)
	for i := range sqs {
		sqs[i] = SquarePoint{Center: Pt(r.Float64()*100, r.Float64()*100), R: 0.5 + r.Float64()*3}
	}
	sset, err := NewSquareSet(sqs)
	if err != nil {
		t.Fatal(err)
	}

	backends := map[string]NonzeroBackend{
		"index":   BackendIndex,
		"direct":  BackendDirect,
		"diagram": BackendDiagram,
	}
	sets := map[string]UncertainSet{"discrete": dset, "continuous": cset, "square": sset}

	for sname, set := range sets {
		for bname, backend := range backends {
			if sname == "square" && backend == BackendDiagram {
				continue // no diagram backend under L∞
			}
			opts := []Option{WithNonzeroBackend(backend)}
			if sname == "discrete" {
				// The V_Pr engine caches one vector per face — the aliasing
				// hazard the audit exists for. Exercise it along with exact.
				opts = append(opts, WithQuantifier(VPrDiagram(-10, -10, 110, 110)))
			}
			if sname == "continuous" {
				opts = append(opts, WithIntegrationPanels(32))
			}
			idx, err := New(set, opts...)
			if err != nil {
				t.Fatalf("%s/%s: %v", sname, bname, err)
			}
			for trial := 0; trial < 5; trial++ {
				q := Pt(r.Float64()*100, r.Float64()*100)

				nz, err := idx.Nonzero(q)
				if err != nil {
					t.Fatal(err)
				}
				orig := append([]int(nil), nz...)
				for i := range nz {
					nz[i] = -7
				}
				again, _ := idx.Nonzero(q)
				if !reflect.DeepEqual(again, orig) {
					t.Fatalf("%s/%s: Nonzero result aliases internal state: %v vs %v", sname, bname, again, orig)
				}

				if sname == "square" {
					continue // no quantifier surface
				}
				pi, err := idx.Probabilities(q)
				if err != nil {
					t.Fatal(err)
				}
				origPi := append([]float64(nil), pi...)
				for i := range pi {
					pi[i] = -1
				}
				againPi, _ := idx.Probabilities(q)
				if !reflect.DeepEqual(againPi, origPi) {
					t.Fatalf("%s/%s: Probabilities result aliases internal state", sname, bname)
				}

				top, err := idx.TopK(q, 3)
				if err != nil {
					t.Fatal(err)
				}
				origTop := append([]IndexProb(nil), top...)
				for i := range top {
					top[i] = IndexProb{Index: -1, Prob: -1}
				}
				againTop, _ := idx.TopK(q, 3)
				if !sameIP(againTop, origTop) {
					t.Fatalf("%s/%s: TopK result aliases internal state", sname, bname)
				}

				pos, err := idx.PositiveProbabilities(q, 0)
				if err != nil {
					t.Fatal(err)
				}
				origPos := append([]IndexProb(nil), pos...)
				for i := range pos {
					pos[i] = IndexProb{Index: -1, Prob: -1}
				}
				againPos, _ := idx.PositiveProbabilities(q, 0)
				if !sameIP(againPos, origPos) {
					t.Fatalf("%s/%s: PositiveProbabilities result aliases internal state", sname, bname)
				}

				th, err := idx.Threshold(q, 0.1)
				if err != nil {
					t.Fatal(err)
				}
				origTh := ThresholdResult{
					Certain:  append([]int(nil), th.Certain...),
					Possible: append([]int(nil), th.Possible...),
				}
				for i := range th.Certain {
					th.Certain[i] = -1
				}
				for i := range th.Possible {
					th.Possible[i] = -1
				}
				againTh, _ := idx.Threshold(q, 0.1)
				if !reflect.DeepEqual(againTh, origTh) {
					t.Fatalf("%s/%s: Threshold result aliases internal state", sname, bname)
				}
			}
		}
	}
}

// TestIntoVariants: the caller-buffer query forms must reuse the buffer
// when it is large enough and agree exactly with the allocating forms.
func TestIntoVariants(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	set, err := NewDiscreteSet(randomDiscretePoints(r, 15, 3))
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range discreteEngines() {
		idx, err := New(set, opts...)
		if err != nil {
			t.Fatal(err)
		}
		piBuf := make([]float64, idx.Len())
		nzBuf := make([]int, 0, idx.Len())
		for trial := 0; trial < 10; trial++ {
			q := Pt(r.Float64()*100, r.Float64()*100)

			want, _ := idx.Probabilities(q)
			got, err := idx.ProbabilitiesInto(q, piBuf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: ProbabilitiesInto disagrees with Probabilities", name)
			}
			if len(piBuf) > 0 && &got[0] != &piBuf[0] {
				t.Fatalf("%s: ProbabilitiesInto did not reuse the buffer", name)
			}

			wantNZ, _ := idx.Nonzero(q)
			gotNZ, err := idx.NonzeroInto(q, nzBuf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(append([]int{}, gotNZ...), wantNZ) {
				t.Fatalf("%s: NonzeroInto %v, Nonzero %v", name, gotNZ, wantNZ)
			}
			if len(gotNZ) > 0 && len(gotNZ) <= cap(nzBuf) && &gotNZ[0] != &nzBuf[:1][0] {
				t.Fatalf("%s: NonzeroInto did not reuse the buffer", name)
			}
		}
	}
	// A short buffer must be grown, not overrun.
	idx, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	got, err := idx.ProbabilitiesInto(Pt(1, 1), make([]float64, 2))
	if err != nil || len(got) != idx.Len() {
		t.Fatalf("ProbabilitiesInto(short buf) len = %d, err %v", len(got), err)
	}
}

// TestQueryBatchOpsSparseConsistency: the batch surface dispatches to the
// same sparse implementations, so a mixed batch must be byte-identical
// to sequential facade calls (the server's coalescing relies on this).
func TestQueryBatchOpsSparseConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	set, err := NewDiscreteSet(randomDiscretePoints(r, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := New(set, WithQuantifier(SpiralSearch(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for i := 0; i < 40; i++ {
		q := Pt(r.Float64()*100, r.Float64()*100)
		reqs = append(reqs,
			Request{Q: q, Op: OpTopK, K: 1 + i%5},
			Request{Q: q, Op: OpThreshold, Tau: 0.1 + float64(i%4)*0.1},
			Request{Q: q, Op: OpProbabilities})
	}
	res, err := idx.QueryBatchOps(context.Background(), reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		switch req.Op {
		case OpTopK:
			want, _ := idx.TopK(req.Q, req.K)
			if !sameIP(res[i].Ranked, want) {
				t.Fatalf("req %d: batch TopK %v, sequential %v", i, res[i].Ranked, want)
			}
		case OpThreshold:
			want, _ := idx.Threshold(req.Q, req.Tau)
			if !reflect.DeepEqual(res[i].Threshold, want) {
				t.Fatalf("req %d: batch Threshold %+v, sequential %+v", i, res[i].Threshold, want)
			}
		case OpProbabilities:
			want, _ := idx.Probabilities(req.Q)
			if !reflect.DeepEqual(res[i].Probabilities, want) {
				t.Fatalf("req %d: batch Probabilities disagree", i)
			}
		}
	}
}
