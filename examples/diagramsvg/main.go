// Diagramsvg renders figure-style artifacts from the paper as SVG files in
// the current directory:
//
//	gamma.svg        — a γ curve as the lower envelope of hyperbola
//	                   branches (Figure 4)
//	diagram.svg      — the full nonzero Voronoi diagram of a small random
//	                   instance (Figures 2–3 setting)
//	lb-quadratic.svg — the Ω(n²) construction of Theorem 2.10 with its
//	                   arrangement vertices
//
// It uses internal packages (it is a rendering utility, not an API demo;
// see quickstart/sensornet/fleet for the public API).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"pnn/internal/core"
	"pnn/internal/geom"
	"pnn/internal/svg"
	"pnn/internal/workload"
)

func main() {
	renderGamma()
	renderDiagram()
	renderLBQuadratic()
	fmt.Println("wrote gamma.svg, diagram.svg, lb-quadratic.svg")
}

func writeSVG(name string, c *svg.Canvas) {
	f, err := os.Create(name)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if _, err := c.WriteTo(f); err != nil {
		log.Fatal(err)
	}
}

// renderGamma reproduces the Figure 4 setting: γ_1 for a disk against a
// handful of others, drawn as the envelope of its arcs.
func renderGamma() {
	disks := []geom.Disk{
		geom.Dsk(0, 0, 2),
		geom.Dsk(12, 3, 3),
		geom.Dsk(10, -8, 2),
		geom.Dsk(-2, 12, 2.5),
		geom.Dsk(-10, -4, 2),
	}
	g := core.BuildGamma(disks, 0, core.GammaOptions{})
	box := geom.BBox{MinX: -25, MinY: -25, MaxX: 25, MaxY: 25}
	c := svg.New(box, 800)
	for i, d := range disks {
		stroke := "steelblue"
		if i == 0 {
			stroke = "black"
		}
		c.Circle(d, stroke, "none", 1.5)
		c.Text(d.C, 12, "gray", fmt.Sprintf("D%d", i+1))
	}
	for _, arc := range g.Arcs {
		var pts []geom.Point
		const m = 64
		for k := 0; k <= m; k++ {
			th := arc.Lo + (arc.Hi-arc.Lo)*float64(k)/float64(m)
			r := arc.Eval(th)
			if r > 60 {
				continue
			}
			pts = append(pts, arc.Point(disks[0].C, th))
		}
		c.Polyline(pts, "crimson", 2)
	}
	for _, bp := range g.Breakpoints {
		c.Dot(bp, 4, "darkorange")
	}
	writeSVG("gamma.svg", c)
}

// renderDiagram draws all curves and vertices of V≠0 for a small random
// instance (the Figures 2–3 setting).
func renderDiagram() {
	r := rand.New(rand.NewSource(3))
	disks := workload.RandomDisks(r, 7, 40, 2, 5)
	d := core.BuildDiagram(disks, core.DiagramOptions{SkipSubdivision: true})
	box := workload.DisksBBox(disks).Pad(20)
	c := svg.New(box, 900)
	for i, dk := range disks {
		c.Circle(dk, "steelblue", "none", 1.2)
		c.Text(dk.C, 11, "gray", fmt.Sprintf("D%d", i+1))
	}
	colors := []string{"crimson", "seagreen", "darkorange", "purple", "teal", "chocolate", "navy"}
	for i, g := range d.Gammas {
		for _, arc := range g.Arcs {
			var pts []geom.Point
			const m = 64
			for k := 0; k <= m; k++ {
				th := arc.Lo + (arc.Hi-arc.Lo)*float64(k)/float64(m)
				rr := arc.Eval(th)
				if rr > box.Width()+box.Height() {
					continue
				}
				pts = append(pts, arc.Point(disks[i].C, th))
			}
			c.Polyline(pts, colors[i%len(colors)], 1.4)
		}
	}
	for _, v := range d.Vertices {
		c.Dot(v.P, 3, "black")
	}
	writeSVG("diagram.svg", c)
}

// renderLBQuadratic draws Theorem 2.10's Ω(n²) construction (Figure 8).
func renderLBQuadratic() {
	n := 8
	disks := workload.LowerBoundQuadratic(n)
	d := core.BuildDiagram(disks, core.DiagramOptions{SkipSubdivision: true})
	box := workload.DisksBBox(disks).Pad(30)
	c := svg.New(box, 1000)
	for _, dk := range disks {
		c.Circle(dk, "steelblue", "none", 1.5)
	}
	for _, v := range d.Vertices {
		if v.Kind == core.Crossing {
			c.Dot(v.P, 3, "crimson")
		}
	}
	c.Text(geom.Pt(box.MinX+2, box.MaxY-3), 14, "black",
		fmt.Sprintf("Theorem 2.10 construction, n=%d: %d crossing vertices (guaranteed %d)",
			n, d.CrossingCount(), workload.LowerBoundQuadraticExpected(n)))
	writeSVG("lb-quadratic.svg", c)
}
