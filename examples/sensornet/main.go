// Sensornet: a location-based-service scenario with continuous
// uncertainty, the motivating application of the paper's Section 1.
//
// A field of sensors is deployed by airdrop; each sensor's true position
// is known only up to a disk (drift during descent). When an event fires
// at a query location, the dispatcher wants (a) the set of sensors that
// could be the closest — the ones worth waking up — and (b) the
// probability each one actually is closest, to prioritize.
//
// The example builds two pnn.Index engines over the same set — one on
// the near-linear NN≠0 index of Theorem 3.1, one on the nonzero Voronoi
// diagram of Theorem 2.11 — and quantifies probabilities with the Monte
// Carlo estimator of Theorem 4.5 cross-checked by numerical integration
// of Eq. (1).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pnn"
)

func main() {
	r := rand.New(rand.NewSource(7))

	// 60 sensors in a 100×100 field; drift radius 1–4 (heavier sensors
	// drift less).
	const n = 60
	sensors := make([]pnn.DiskPoint, n)
	for i := range sensors {
		sensors[i] = pnn.DiskPoint{
			Support: pnn.Disk{
				Center: pnn.Pt(r.Float64()*100, r.Float64()*100),
				R:      1 + r.Float64()*3,
			},
			Density: pnn.TruncatedGaussian, // drift concentrates near the drop point
			Sigma:   1.5,
		}
	}
	set, err := pnn.NewContinuousSet(sensors)
	if err != nil {
		log.Fatal(err)
	}

	// Monte Carlo quantifier (Theorem 4.5's preprocessing happens inside
	// New); every event query then reuses the preprocessed rounds.
	mcIdx, err := pnn.New(set,
		pnn.WithQuantifier(pnn.MonteCarloBudget(4000)),
		pnn.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	// Same set behind the diagram backend, for cross-checking NN≠0.
	diagIdx, err := pnn.New(set,
		pnn.WithNonzeroBackend(pnn.BackendDiagram))
	if err != nil {
		log.Fatal(err)
	}
	// Integration engine for exact cross-checks of the top candidates.
	intIdx, err := pnn.New(set, pnn.WithIntegrationPanels(192))
	if err != nil {
		log.Fatal(err)
	}

	events := []pnn.Point{{X: 50, Y: 50}, {X: 10, Y: 90}, {X: 75, Y: 20}}
	for _, ev := range events {
		start := time.Now()
		viaIndex, _ := mcIdx.Nonzero(ev)
		tIndex := time.Since(start)
		start = time.Now()
		viaDiagram, _ := diagIdx.Nonzero(ev)
		tDiagram := time.Since(start)
		fmt.Printf("\nevent at %v\n", ev)
		fmt.Printf("  candidates (index, %v):   %v\n", tIndex, viaIndex)
		fmt.Printf("  candidates (diagram, %v): %v\n", tDiagram, viaDiagram)

		// Quantify with Monte Carlo (Theorem 4.5); cross-check the top
		// candidates against numerical integration of Eq. (1).
		est, err := mcIdx.PositiveProbabilities(ev, 0)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := intIdx.Probabilities(ev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  wake-up priority (π̂ by Monte Carlo, π by integration):")
		for _, ip := range est {
			if ip.Prob < 0.01 {
				continue
			}
			fmt.Printf("    sensor %2d: π̂=%.3f  π=%.3f\n", ip.Index, ip.Prob, exact[ip.Index])
		}
	}
}
