// Quickstart: build uncertain points, ask who can be the nearest neighbor,
// and quantify how likely each candidate is — the two query families of
// "Nearest-Neighbor Searching Under Uncertainty II" through the unified
// pnn.Index facade.
package main

import (
	"fmt"
	"log"

	"pnn"
)

func main() {
	// Three discrete uncertain points: last-known positions of three
	// delivery couriers, each with a few possible current locations.
	couriers := []pnn.DiscretePoint{
		{
			Locations: []pnn.Point{{X: 1, Y: 1}, {X: 3, Y: 2}, {X: 2, Y: 4}},
			Weights:   []float64{0.5, 0.3, 0.2},
		},
		{
			Locations: []pnn.Point{{X: 8, Y: 1}, {X: 9, Y: 3}},
			Weights:   []float64{0.6, 0.4},
		},
		{
			Locations: []pnn.Point{{X: 5, Y: 9}, {X: 6, Y: 7}, {X: 4, Y: 8}},
			// nil weights mean uniform (1/3 each)
		},
	}
	set, err := pnn.NewDiscreteSet(couriers)
	if err != nil {
		log.Fatal(err)
	}

	// One facade, exact probabilities (the default quantifier) over the
	// near-linear NN≠0 index (the default backend).
	idx, err := pnn.New(set)
	if err != nil {
		log.Fatal(err)
	}

	pickup := pnn.Pt(5, 4)

	// 1. Which couriers have any chance of being closest to the pickup?
	//    (Lemma 2.1 / Section 3 of the paper.)
	candidates, err := idx.Nonzero(pickup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("couriers that can be nearest to %v: %v\n", pickup, candidates)

	// 2. Exactly how likely is each? (Eq. 2 / Section 4.1.)
	probs, err := idx.PositiveProbabilities(pickup, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	for _, ip := range probs {
		fmt.Printf("  courier %d: π = %.4f\n", ip.Index, ip.Prob)
	}

	// 3. The same probabilities with the fast deterministic approximation
	//    (spiral search, Theorem 4.7): guaranteed π̂ ≤ π ≤ π̂ + ε.
	const eps = 0.01
	spiral, err := pnn.New(set, pnn.WithQuantifier(pnn.SpiralSearch(eps)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spiral search (ε=%.2f):\n", eps)
	approx, err := spiral.PositiveProbabilities(pickup, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, ip := range approx {
		fmt.Printf("  courier %d: π̂ = %.4f\n", ip.Index, ip.Prob)
	}

	// 4. Continuous uncertainty works the same way: sensors whose
	//    positions are only known up to a disk. Exact() integrates
	//    Eq. (1) numerically for continuous inputs.
	sensors := []pnn.DiskPoint{
		{Support: pnn.Disk{Center: pnn.Pt(0, 0), R: 2}},
		{Support: pnn.Disk{Center: pnn.Pt(10, 0), R: 3}},
		{Support: pnn.Disk{Center: pnn.Pt(5, 8), R: 1}},
	}
	cset, err := pnn.NewContinuousSet(sensors)
	if err != nil {
		log.Fatal(err)
	}
	cidx, err := pnn.New(cset, pnn.WithIntegrationPanels(512))
	if err != nil {
		log.Fatal(err)
	}
	event := pnn.Pt(5, 2)
	cands, _ := cidx.Nonzero(event)
	fmt.Printf("sensors that can be nearest to %v: %v\n", event, cands)
	pi, err := cidx.Probabilities(event)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range pi {
		if p > 1e-6 {
			fmt.Printf("  sensor %d: π = %.4f\n", i, p)
		}
	}
}
