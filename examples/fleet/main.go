// Fleet: a moving-object-database scenario with discrete uncertainty,
// after [CKP04]'s motivating setting ("querying imprecise data in moving
// object environments").
//
// A dispatch system tracks taxis that report positions intermittently;
// between reports each taxi's position is one of its recent pings with
// a recency-weighted probability. A rider requests a pickup: the system
// must shortlist taxis that could be closest (NN≠0, Theorem 3.2) and rank
// them by the probability of actually being closest, comparing three
// pnn.Index quantifiers — the exact sweep (Eq. 2), spiral search
// (Theorem 4.7) with its one-sided ε guarantee, and the Monte Carlo
// estimator (Theorem 4.3). A burst of pickups is then answered as one
// concurrent QueryBatch.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	"pnn"
)

func main() {
	r := rand.New(rand.NewSource(42))

	// 200 taxis; each has 2–6 recent pings along a short random walk, with
	// geometrically decaying weights (most recent ping most likely).
	const nTaxis = 200
	taxis := make([]pnn.DiscretePoint, nTaxis)
	for i := range taxis {
		k := 2 + r.Intn(5)
		x, y := r.Float64()*1000, r.Float64()*1000
		locs := make([]pnn.Point, k)
		w := make([]float64, k)
		sum := 0.0
		for t := 0; t < k; t++ {
			locs[t] = pnn.Pt(x, y)
			x += r.NormFloat64() * 60
			y += r.NormFloat64() * 60
			w[t] = math.Pow(0.85, float64(t))
			sum += w[t]
		}
		for t := range w {
			w[t] /= sum
		}
		taxis[i] = pnn.DiscretePoint{Locations: locs, Weights: w}
	}
	set, err := pnn.NewDiscreteSet(taxis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d taxis, max pings %d, weight spread ρ=%.1f\n",
		set.Len(), set.K(), set.Spread())

	// Three engines over the same fleet, differing only in quantifier.
	const eps = 0.01
	exactIdx, err := pnn.New(set)
	if err != nil {
		log.Fatal(err)
	}
	spiralIdx, err := pnn.New(set, pnn.WithQuantifier(pnn.SpiralSearch(eps)))
	if err != nil {
		log.Fatal(err)
	}
	mcIdx, err := pnn.New(set, pnn.WithQuantifier(pnn.MonteCarloBudget(2000)), pnn.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	pickup := pnn.Pt(500, 500)
	start := time.Now()
	shortlist, err := exactIdx.Nonzero(pickup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npickup at %v: %d candidate taxis (%v)\n",
		pickup, len(shortlist), time.Since(start))

	exact, _ := exactIdx.Probabilities(pickup)
	approx, _ := spiralIdx.Probabilities(pickup)
	est, _ := mcIdx.Probabilities(pickup)

	type row struct {
		taxi                  int
		exact, spiral, mcProb float64
	}
	var rows []row
	for _, taxi := range shortlist {
		if exact[taxi] < 0.005 {
			continue
		}
		rows = append(rows, row{taxi, exact[taxi], approx[taxi], est[taxi]})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].exact > rows[b].exact })
	fmt.Printf("\nranking (π > 0.005), ε=%.2f\n", eps)
	fmt.Println("taxi   exact    spiral   monte-carlo")
	for _, rw := range rows {
		fmt.Printf("%-6d %.4f   %.4f   %.4f\n", rw.taxi, rw.exact, rw.spiral, rw.mcProb)
	}

	// Verify the spiral guarantee on this query: π̂ ≤ π ≤ π̂ + ε.
	worst := 0.0
	for i := range exact {
		if approx[i] > exact[i]+1e-9 {
			log.Fatalf("spiral overestimated taxi %d", i)
		}
		worst = math.Max(worst, exact[i]-approx[i])
	}
	fmt.Printf("\nspiral one-sided error on this query: %.5f (guarantee ≤ %.2f)\n", worst, eps)

	// Rush hour: 500 pickups at once, answered as one deterministic
	// concurrent batch.
	pickups := make([]pnn.Point, 500)
	for i := range pickups {
		pickups[i] = pnn.Pt(r.Float64()*1000, r.Float64()*1000)
	}
	start = time.Now()
	results, err := spiralIdx.QueryBatch(context.Background(), pickups, 8)
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	totalCands := 0
	for _, res := range results {
		totalCands += len(res.Nonzero)
	}
	fmt.Printf("\nbatch: %d pickups in %v (%v/query), avg %.1f candidates\n",
		len(pickups), el.Round(time.Millisecond),
		(el / time.Duration(len(pickups))).Round(time.Microsecond),
		float64(totalCands)/float64(len(pickups)))
}
