package pnn

import "math/rand"

// Metric selects the distance function of the query engine.
type Metric int

// Supported metrics.
const (
	// L2 is the Euclidean metric used by disk-supported and discrete
	// uncertain points.
	L2 Metric = iota
	// Linf is the Chebyshev metric used by square uncertainty regions
	// (§3, Remark (ii)).
	Linf
)

func (m Metric) String() string {
	if m == Linf {
		return "Linf"
	}
	return "L2"
}

// NonzeroBackend selects the structure answering NN≠0 queries.
type NonzeroBackend int

// Supported backends, trading preprocessing for query time.
const (
	// BackendIndex is the near-linear two-stage index of Theorems 3.1/3.2
	// (logarithmic queries, O(n log n) preprocessing). The default.
	BackendIndex NonzeroBackend = iota
	// BackendDirect evaluates Lemma 2.1 directly: no preprocessing, O(n)
	// per query.
	BackendDirect
	// BackendDiagram point-locates in the nonzero Voronoi diagram V≠0
	// (Theorem 2.11): worst-case Θ(n³) space, O(log μ + t) queries.
	BackendDiagram
)

func (b NonzeroBackend) String() string {
	switch b {
	case BackendDirect:
		return "direct"
	case BackendDiagram:
		return "diagram"
	default:
		return "index"
	}
}

type quantKind int

const (
	quantExact quantKind = iota
	quantMonteCarlo
	quantMonteCarloBudget
	quantSpiral
	quantVPr
)

// Quantifier selects the engine computing quantification probabilities
// π_i(q). Construct one with Exact, MonteCarlo, MonteCarloBudget,
// SpiralSearch, or VPrDiagram.
type Quantifier struct {
	kind                   quantKind
	eps, delta             float64
	rounds                 int
	minX, minY, maxX, maxY float64
}

// Exact computes π_i(q) exactly: the Eq. (2) sweep for discrete points
// (O(N log N) per query), numerical integration of Eq. (1) for
// continuous ones (see WithIntegrationPanels). The default quantifier.
func Exact() Quantifier { return Quantifier{kind: quantExact} }

// MonteCarlo estimates π_i(q) from preprocessed random instantiations
// with additive error at most eps for every query, with probability at
// least 1−delta (Theorems 4.3 and 4.5). The round count follows the
// theorems; use MonteCarloBudget for an explicit budget.
func MonteCarlo(eps, delta float64) Quantifier {
	return Quantifier{kind: quantMonteCarlo, eps: eps, delta: delta}
}

// MonteCarloBudget estimates π_i(q) from an explicit number of
// preprocessed rounds; the error scales as sqrt(log/rounds).
func MonteCarloBudget(rounds int) Quantifier {
	return Quantifier{kind: quantMonteCarloBudget, rounds: rounds}
}

// SpiralSearch approximates π_i(q) deterministically with one-sided
// additive error: π̂_i ≤ π_i ≤ π̂_i + eps (Theorem 4.7). Continuous
// points are first discretized (Lemma 4.4; see WithSpiralSamples).
func SpiralSearch(eps float64) Quantifier {
	return Quantifier{kind: quantSpiral, eps: eps}
}

// VPrDiagram answers exact π vectors by point location in the
// probabilistic Voronoi diagram covering the given box (Theorem 4.2,
// Θ(N⁴) worst-case space — small inputs only). Discrete points only;
// queries outside the box fall back to the exact sweep.
func VPrDiagram(minX, minY, maxX, maxY float64) Quantifier {
	return Quantifier{kind: quantVPr, minX: minX, minY: minY, maxX: maxX, maxY: maxY}
}

// Option configures an Index under construction. All options have
// sensible defaults; zero options give an exact engine over the
// near-linear NN≠0 index.
type Option func(*config)

type config struct {
	metric        Metric
	metricSet     bool
	backend       NonzeroBackend
	quant         Quantifier
	quantSet      bool
	seed          int64
	src           rand.Source
	panels        int
	spiralSamples int
}

func defaultConfig() config {
	return config{
		backend:       BackendIndex,
		quant:         Exact(),
		seed:          1,
		panels:        512,
		spiralSamples: 500,
	}
}

// WithMetric fixes the metric. It must match the data kind: L2 for disk
// and discrete uncertain points, Linf for square regions. Without this
// option the metric is inferred from the data.
func WithMetric(m Metric) Option {
	return func(c *config) { c.metric = m; c.metricSet = true }
}

// WithNonzeroBackend selects the NN≠0 structure.
func WithNonzeroBackend(b NonzeroBackend) Option {
	return func(c *config) { c.backend = b }
}

// WithQuantifier selects the probability engine. Square (L∞) sets have
// no quantifier; passing this option for one is rejected by New.
func WithQuantifier(q Quantifier) Option {
	return func(c *config) { c.quant = q; c.quantSet = true }
}

// WithSeed seeds every randomized component (Monte Carlo instantiation,
// continuous-point discretization). Indexes built with the same data,
// options, and seed answer every query identically — including
// QueryBatch at any worker count. The default seed is 1, so omitting
// the option is also deterministic.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithRandSource supplies a rand.Source for randomized components,
// overriding WithSeed. Determinism is then up to the caller's source.
func WithRandSource(src rand.Source) Option {
	return func(c *config) { c.src = src }
}

// WithIntegrationPanels sets the Simpson panel count used when
// probabilities of continuous points are computed by numerical
// integration of Eq. (1). Accuracy grows with panels; the default 512
// gives ~1e-4 on well-conditioned inputs.
func WithIntegrationPanels(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.panels = n
		}
	}
}

// WithSpiralSamples sets the per-point sample count used to discretize
// continuous distributions for spiral search (Lemma 4.4). The sampling
// error adds n·α(samples) to the spiral ε.
func WithSpiralSamples(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.spiralSamples = n
		}
	}
}
